package analyzers

import (
	"go/ast"
	"go/types"
)

// ObsNilSafe enforces the obs package's wiring contract outside obs
// itself: metric values come from a Registry (whose nil form hands out nil,
// no-op metrics), are held by pointer, and are only touched through their
// nil-safe methods. The health engine rides the same contract: a nil
// *health.Engine is the uninstrumented no-op, and health.New is the only
// constructor that validates rules and wires state. The causal journal
// follows suit: a nil *journal.Journal (and the nil *journal.Lane it hands
// out) drops records for free, and journal.New is the only way to get a
// journal whose lanes share one ID counter. The timeline sampler is the
// same shape again: a nil *timeline.Timeline (and the nil *timeline.Lane
// it hands out) records nothing, and timeline.New is the only constructor
// that wires the column table and staging rings. The serving layer closes
// the set: a nil *serve.Server is inert (Register and Shutdown no-op,
// Start errors), and serve.New is the only constructor that wires the mux
// and the lifecycle state behind Start/Shutdown. Violations this catches:
//
//   - constructing obs.Counter/Gauge/Histogram/Registry/Tracer,
//     health.Engine, journal.Journal/Lane, timeline.Timeline/Lane, or
//     serve.Server with a composite literal or new(): a hand-rolled
//     metric is invisible to every exposition path (Snapshot, expvar,
//     Prometheus), a zero-value Registry panics on first use, a
//     zero-value Engine skips rule validation, a hand-rolled Journal
//     mints colliding causal IDs, a hand-rolled Timeline has no column
//     table for its lanes to stage into, and a zero-value Server has no
//     mux — Register panics and Shutdown's idempotence guard is gone.
//   - declaring a field, variable, or parameter of value (non-pointer)
//     guarded type: copying the embedded atomics/mutexes forks the state,
//     and a value can never be the nil no-op that uninstrumented runs rely
//     on.
//
// obs.Event, the snapshot types, health's plain-data types (Targets,
// Rule, SLOReport), journal's plain-data types (Record, Index, Summary),
// and timeline.Sample stay unrestricted.
var ObsNilSafe = &Analyzer{
	Name: "obsnilsafe",
	Doc:  "obs metrics and health engines must come from their constructors and be held by pointer",
	Contract: `obs guarded types (Registry metrics, health.Engine, journal
Journal/Lane, timeline Timeline/Lane, serve.Server) rely on nil-receiver
no-ops for zero-cost disablement, so
they must be obtained from their constructors and held only as pointers:
no composite literals, no new(T), no value-typed fields or copies —
any of which bypasses the nil-safety contract and panics or splits state.
Example fixture: internal/analyzers/testdata/src/obsnilsafe/bad/bad.go`,
	Run: runObsNilSafe,
}

const (
	obsPath      = "dcnr/internal/obs"
	healthPath   = "dcnr/internal/obs/health"
	journalPath  = "dcnr/internal/obs/journal"
	timelinePath = "dcnr/internal/obs/timeline"
	servePath    = "dcnr/internal/serve"
)

// obsGuardedTypes are the types with construction and copy rules, per
// package. Constructors: Registry methods for metrics, NewRegistry,
// NewTracer, health.New, journal.New (lanes only via Journal.Lane),
// timeline.New (lanes only via Timeline.Lane), serve.New.
var obsGuardedTypes = map[string]map[string]bool{
	obsPath: {
		"Counter": true, "Gauge": true, "Histogram": true,
		"Registry": true, "Tracer": true,
	},
	healthPath:   {"Engine": true},
	journalPath:  {"Journal": true, "Lane": true},
	timelinePath: {"Timeline": true, "Lane": true},
	servePath:    {"Server": true},
}

// isObsGuarded reports whether t is a guarded type, returning its
// package-qualified name (e.g. "obs.Counter", "health.Engine").
func isObsGuarded(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	set := obsGuardedTypes[named.Obj().Pkg().Path()]
	if set == nil || !set[named.Obj().Name()] {
		return "", false
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name(), true
}

func runObsNilSafe(pass *Pass) {
	if obsGuardedTypes[pass.Pkg.Path()] != nil {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if tv, ok := pass.Info.Types[n]; ok {
					if name, guarded := isObsGuarded(tv.Type); guarded {
						pass.Reportf(n.Pos(),
							"%s constructed directly: use %s so the value is registered and nil-safe",
							name, obsConstructor(name))
					}
				}
			case *ast.CallExpr:
				if isBuiltin(pass.Info, n, "new") && len(n.Args) == 1 {
					if tv, ok := pass.Info.Types[n.Args[0]]; ok && tv.IsType() {
						if name, guarded := isObsGuarded(tv.Type); guarded {
							pass.Reportf(n.Pos(),
								"new(%s) bypasses the constructor: use %s", name, obsConstructor(name))
						}
					}
				}
			}
			return true
		})
	}
	// Value-typed declarations: every defined field/var/param whose type is
	// a guarded type held by value.
	for ident, obj := range pass.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		if name, guarded := isObsGuarded(v.Type()); guarded {
			pass.Reportf(ident.Pos(),
				"%s holds %s by value: declare *%s (values copy internal state and can never be the nil no-op)",
				ident.Name, name, name)
		}
	}
}

func obsConstructor(name string) string {
	switch name {
	case "obs.Registry":
		return "obs.NewRegistry"
	case "obs.Tracer":
		return "obs.NewTracer"
	case "health.Engine":
		return "health.New"
	case "journal.Journal":
		return "journal.New"
	case "journal.Lane":
		return "Journal.Lane"
	case "timeline.Timeline":
		return "timeline.New"
	case "timeline.Lane":
		return "Timeline.Lane"
	case "serve.Server":
		return "serve.New"
	}
	return "Registry." + name[len("obs."):]
}
