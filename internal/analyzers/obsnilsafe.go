package analyzers

import (
	"go/ast"
	"go/types"
)

// ObsNilSafe enforces the obs package's wiring contract outside obs
// itself: metric values come from a Registry (whose nil form hands out nil,
// no-op metrics), are held by pointer, and are only touched through their
// nil-safe methods. Violations this catches:
//
//   - constructing obs.Counter/Gauge/Histogram/Registry/Tracer with a
//     composite literal or new(): a hand-rolled metric is invisible to
//     every exposition path (Snapshot, expvar, Prometheus), and a
//     zero-value Registry panics on first use.
//   - declaring a field, variable, or parameter of value (non-pointer)
//     metric type: copying the embedded atomics forks the metric, and a
//     value can never be the nil no-op that uninstrumented runs rely on.
//
// obs.Event and the snapshot types are plain data and stay unrestricted.
var ObsNilSafe = &Analyzer{
	Name: "obsnilsafe",
	Doc:  "obs metrics must come from a Registry and be held by pointer",
	Run:  runObsNilSafe,
}

const obsPath = "dcnr/internal/obs"

// obsGuardedTypes are the obs types with construction and copy rules.
// Constructors: Registry methods for metrics, NewRegistry, NewTracer.
var obsGuardedTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"Registry": true, "Tracer": true,
}

func isObsGuarded(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != obsPath {
		return "", false
	}
	name := named.Obj().Name()
	return name, obsGuardedTypes[name]
}

func runObsNilSafe(pass *Pass) {
	if pass.Pkg.Path() == obsPath {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if tv, ok := pass.Info.Types[n]; ok {
					if name, guarded := isObsGuarded(tv.Type); guarded {
						pass.Reportf(n.Pos(),
							"obs.%s constructed directly: use %s so the metric is registered and nil-safe",
							name, obsConstructor(name))
					}
				}
			case *ast.CallExpr:
				if isBuiltin(pass.Info, n, "new") && len(n.Args) == 1 {
					if tv, ok := pass.Info.Types[n.Args[0]]; ok && tv.IsType() {
						if name, guarded := isObsGuarded(tv.Type); guarded {
							pass.Reportf(n.Pos(),
								"new(obs.%s) bypasses the registry: use %s", name, obsConstructor(name))
						}
					}
				}
			}
			return true
		})
	}
	// Value-typed declarations: every defined field/var/param whose type is
	// a guarded obs type held by value.
	for ident, obj := range pass.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		if name, guarded := isObsGuarded(v.Type()); guarded {
			pass.Reportf(ident.Pos(),
				"%s holds obs.%s by value: declare *obs.%s (values copy atomics and can never be the nil no-op)",
				ident.Name, name, name)
		}
	}
}

func obsConstructor(name string) string {
	switch name {
	case "Registry":
		return "obs.NewRegistry"
	case "Tracer":
		return "obs.NewTracer"
	}
	return "Registry." + name
}
