package optical

import (
	"strings"
	"testing"

	"dcnr/internal/backbone"
)

func testInventory(t *testing.T) (*Inventory, *backbone.Topology, backbone.Config) {
	t.Helper()
	cfg := backbone.Config{Edges: 25, Seed: 3}
	topo, err := backbone.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return BuildInventory(topo, 1), topo, cfg
}

func TestMediumString(t *testing.T) {
	if Terrestrial.String() != "terrestrial" || Submarine.String() != "submarine" {
		t.Error("medium names wrong")
	}
	if !strings.Contains(Medium(9).String(), "9") {
		t.Error("unknown medium String")
	}
}

func TestEveryLinkRidesSharedPlusHauls(t *testing.T) {
	inv, topo, _ := testInventory(t)
	for _, link := range topo.Links {
		segs := inv.LinkSegments(link.Name)
		if len(segs) < 2 {
			t.Fatalf("link %s rides %d segments, want ≥ 2", link.Name, len(segs))
		}
		if !segs[0].Shared {
			t.Errorf("link %s first segment not the shared last-mile", link.Name)
		}
		for _, s := range segs[1:] {
			if s.Shared {
				t.Errorf("link %s rides two shared segments", link.Name)
			}
			if len(s.Links) != 1 || s.Links[0] != link.Name {
				t.Errorf("long-haul %s not private to %s", s.ID, link.Name)
			}
		}
	}
}

func TestSharedRiskGroupsMatchEdges(t *testing.T) {
	inv, topo, _ := testInventory(t)
	groups := inv.SharedRiskGroups()
	if len(groups) != len(topo.Edges) {
		t.Fatalf("SRGs = %d, want one per edge", len(groups))
	}
	for _, e := range topo.Edges {
		id := "seg-" + e.Name + "-lastmile"
		links, ok := groups[id]
		if !ok {
			t.Fatalf("no SRG for %s", e.Name)
		}
		if len(links) != len(e.Links) {
			t.Errorf("SRG %s carries %d links, edge has %d", id, len(links), len(e.Links))
		}
	}
}

func TestChannelsPerSharedSegment(t *testing.T) {
	inv, topo, _ := testInventory(t)
	for _, e := range topo.Edges {
		seg, ok := inv.Segment("seg-" + e.Name + "-lastmile")
		if !ok {
			t.Fatal("missing shared segment")
		}
		if len(seg.Channels) != len(e.Links) {
			t.Errorf("%s carries %d channels for %d links", seg.ID, len(seg.Channels), len(e.Links))
		}
		for _, ch := range seg.Channels {
			if ch.WavelengthNM < 1530 || ch.WavelengthNM > 1565 {
				t.Errorf("wavelength %d outside C-band", ch.WavelengthNM)
			}
			if ch.RouterPort == "" {
				t.Error("channel without router port")
			}
		}
	}
}

func TestSubmarineOnlyWhereExpected(t *testing.T) {
	inv, topo, _ := testInventory(t)
	for _, e := range topo.Edges {
		expectSubmarine := e.Continent == backbone.Africa || e.Continent == backbone.Australia
		for _, li := range e.Links {
			segs := inv.LinkSegments(topo.Links[li].Name)
			hasSubmarine := false
			for _, s := range segs {
				if s.Medium == Submarine {
					hasSubmarine = true
				}
			}
			if hasSubmarine != expectSubmarine {
				t.Errorf("%s (%v): submarine=%v, want %v", e.Name, e.Continent, hasSubmarine, expectSubmarine)
			}
		}
	}
}

func TestAttributeCutsToSharedSegment(t *testing.T) {
	inv, topo, cfg := testInventory(t)
	downs, err := topo.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cuts, isolated := 0, 0
	for _, d := range downs {
		seg, err := inv.Attribute(d)
		if err != nil {
			t.Fatal(err)
		}
		if d.Cut {
			cuts++
			if !seg.Shared || seg.ID != "seg-"+d.Edge+"-lastmile" {
				t.Fatalf("cut attributed to %s, want the edge's last-mile", seg.ID)
			}
		} else {
			isolated++
			if seg.Shared {
				t.Fatalf("isolated failure attributed to shared segment %s", seg.ID)
			}
			if len(seg.Links) != 1 || seg.Links[0] != d.Link {
				t.Fatalf("isolated failure attributed to foreign segment %s", seg.ID)
			}
		}
	}
	if cuts == 0 || isolated == 0 {
		t.Fatalf("attribution saw cuts=%d isolated=%d", cuts, isolated)
	}
}

func TestAttributeDeterministic(t *testing.T) {
	inv, topo, cfg := testInventory(t)
	downs, err := topo.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := downs[0]
	a, err := inv.Attribute(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inv.Attribute(d)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Error("attribution not deterministic")
	}
}

func TestAttributeErrors(t *testing.T) {
	inv, _, _ := testInventory(t)
	if _, err := inv.Attribute(backbone.LinkDown{Edge: "ghost", Cut: true}); err == nil {
		t.Error("unknown edge accepted")
	}
	if _, err := inv.Attribute(backbone.LinkDown{Link: "ghost"}); err == nil {
		t.Error("unknown link accepted")
	}
}

func TestFailuresByMedium(t *testing.T) {
	inv, topo, cfg := testInventory(t)
	downs, err := topo.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := inv.FailuresByMedium(downs)
	if err != nil {
		t.Fatal(err)
	}
	terrestrial := stats[Terrestrial]
	if terrestrial.Failures == 0 || terrestrial.MeanMTTR <= 0 {
		t.Errorf("terrestrial stats = %+v", terrestrial)
	}
	total := 0
	for _, s := range stats {
		total += s.Failures
	}
	if total != len(downs) {
		t.Errorf("attributed %d of %d records", total, len(downs))
	}
}

func TestBuildDeterministic(t *testing.T) {
	_, topo, _ := testInventory(t)
	a := BuildInventory(topo, 9)
	b := BuildInventory(topo, 9)
	sa, sb := a.Segments(), b.Segments()
	if len(sa) != len(sb) {
		t.Fatal("segment counts differ")
	}
	for i := range sa {
		if sa[i].ID != sb[i].ID || sa[i].LengthKM != sb[i].LengthKM {
			t.Fatalf("segment %d differs", i)
		}
	}
}

func TestSegmentLookup(t *testing.T) {
	inv, _, _ := testInventory(t)
	if _, ok := inv.Segment("nope"); ok {
		t.Error("unknown segment found")
	}
}
