// Package optical models the physical layer beneath the backbone's fiber
// links, following §3.2's hierarchy: "Each end-to-end fiber link is
// embodied by optical circuits that consist of multiple optical segments.
// An optical segment corresponds to a fiber and carries multiple channels,
// where each channel corresponds to a different wavelength mapped to a
// specific router port."
//
// The inventory makes the backbone's correlated failures mechanistic: the
// links of an edge share a last-mile segment (the conduit a backhoe or
// storm severs — the shared-risk group behind the backbone simulator's
// edge-severing events), while each link's long-haul segments are diverse.
// Downtime records can be attributed to segments, which supports analyses
// like failure counts by medium (terrestrial vs the submarine fiber that
// makes Africa's repairs slow, §6.3).
package optical

import (
	"fmt"
	"hash/fnv"
	"sort"

	"dcnr/internal/backbone"
	"dcnr/internal/simrand"
)

// Medium is the physical environment a segment runs through.
type Medium int

const (
	// Terrestrial segments run in buried conduit or aerial spans.
	Terrestrial Medium = iota
	// Submarine segments cross water; repairs need cable ships, which is
	// why §6.3's African edges take the longest to recover.
	Submarine
)

// String names the medium.
func (m Medium) String() string {
	switch m {
	case Terrestrial:
		return "terrestrial"
	case Submarine:
		return "submarine"
	default:
		return fmt.Sprintf("Medium(%d)", int(m))
	}
}

// Channel is one wavelength on a segment, mapped to a router port.
type Channel struct {
	// WavelengthNM is the carrier wavelength in nanometres (C-band).
	WavelengthNM int
	// RouterPort is the backbone-router port the wavelength lands on.
	RouterPort string
}

// Segment is one physical fiber span.
type Segment struct {
	// ID identifies the segment ("seg-edge001-lastmile",
	// "seg-link0004-haul1").
	ID string
	// Medium is the physical environment.
	Medium Medium
	// LengthKM is the span length.
	LengthKM float64
	// Shared marks the edge's last-mile conduit carried by every one of
	// its links — the shared-risk group.
	Shared bool
	// Links lists the link names riding this segment, sorted.
	Links []string
	// Channels are the wavelengths the segment carries (one per riding
	// link).
	Channels []Channel
}

// Inventory is the optical layer of one backbone topology.
type Inventory struct {
	segments []Segment
	byID     map[string]int
	// linkSegments maps link name → indices of its segments (last-mile
	// first, then long-haul spans).
	linkSegments map[string][]int
	// lastMile maps edge name → index of its shared segment.
	lastMile map[string]int
}

// submarineContinent marks which continents' long-haul spans cross water.
func submarineContinent(c backbone.Continent) bool {
	return c == backbone.Africa || c == backbone.Australia
}

// BuildInventory derives the optical layer for topo: one shared last-mile
// segment per edge plus one to three diverse long-haul segments per link.
// Construction is deterministic in seed.
func BuildInventory(topo *backbone.Topology, seed uint64) *Inventory {
	inv := &Inventory{
		byID:         make(map[string]int),
		linkSegments: make(map[string][]int),
		lastMile:     make(map[string]int),
	}
	rng := simrand.NewSource(seed).Stream("optical")
	wavelength := 1530 // C-band start, nm

	for _, e := range topo.Edges {
		// The shared conduit out of the edge's location.
		shared := Segment{
			ID:       fmt.Sprintf("seg-%s-lastmile", e.Name),
			Medium:   Terrestrial,
			LengthKM: 1 + 9*rng.Float64(),
			Shared:   true,
		}
		for _, li := range e.Links {
			link := topo.Links[li]
			shared.Links = append(shared.Links, link.Name)
			shared.Channels = append(shared.Channels, Channel{
				WavelengthNM: wavelength,
				RouterPort:   fmt.Sprintf("bbr.%s:%d", e.Name, len(shared.Channels)+1),
			})
			wavelength++
			if wavelength > 1565 {
				wavelength = 1530
			}
		}
		sort.Strings(shared.Links)
		sharedIdx := inv.add(shared)
		inv.lastMile[e.Name] = sharedIdx

		for _, li := range e.Links {
			link := topo.Links[li]
			inv.linkSegments[link.Name] = append(inv.linkSegments[link.Name], sharedIdx)
			hauls := 1 + rng.Intn(3)
			for h := 1; h <= hauls; h++ {
				medium := Terrestrial
				if submarineContinent(e.Continent) && h == 1 {
					medium = Submarine
				}
				seg := Segment{
					ID:       fmt.Sprintf("seg-%s-haul%d", link.Name, h),
					Medium:   medium,
					LengthKM: 50 + 1950*rng.Float64(),
					Links:    []string{link.Name},
					Channels: []Channel{{
						WavelengthNM: 1530 + rng.Intn(36),
						RouterPort:   fmt.Sprintf("bbr.%s:haul", e.Name),
					}},
				}
				inv.linkSegments[link.Name] = append(inv.linkSegments[link.Name], inv.add(seg))
			}
		}
	}
	return inv
}

func (inv *Inventory) add(s Segment) int {
	idx := len(inv.segments)
	inv.segments = append(inv.segments, s)
	inv.byID[s.ID] = idx
	return idx
}

// Segments returns every segment.
func (inv *Inventory) Segments() []Segment { return append([]Segment(nil), inv.segments...) }

// Segment returns the named segment.
func (inv *Inventory) Segment(id string) (Segment, bool) {
	idx, ok := inv.byID[id]
	if !ok {
		return Segment{}, false
	}
	return inv.segments[idx], true
}

// LinkSegments returns the segments a link rides, last-mile first.
func (inv *Inventory) LinkSegments(link string) []Segment {
	var out []Segment
	for _, idx := range inv.linkSegments[link] {
		out = append(out, inv.segments[idx])
	}
	return out
}

// SharedRiskGroups returns, per shared segment ID, the links that fail
// together when it is cut.
func (inv *Inventory) SharedRiskGroups() map[string][]string {
	out := make(map[string][]string)
	for _, s := range inv.segments {
		if s.Shared {
			out[s.ID] = append([]string(nil), s.Links...)
		}
	}
	return out
}

// Attribute names the segment responsible for a downtime record: cuts hit
// the edge's shared last-mile conduit; isolated failures hit one of the
// link's own long-haul spans (chosen deterministically from the record's
// identity, as a field RCA would pin one span).
func (inv *Inventory) Attribute(d backbone.LinkDown) (Segment, error) {
	if d.Cut {
		idx, ok := inv.lastMile[d.Edge]
		if !ok {
			return Segment{}, fmt.Errorf("optical: unknown edge %q", d.Edge)
		}
		return inv.segments[idx], nil
	}
	segs := inv.linkSegments[d.Link]
	if len(segs) < 2 {
		return Segment{}, fmt.Errorf("optical: link %q has no long-haul segments", d.Link)
	}
	hauls := segs[1:] // skip the shared last-mile
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%f", d.Link, d.Start)
	return inv.segments[hauls[h.Sum64()%uint64(len(hauls))]], nil
}

// MediumStats aggregates attributed failures per medium.
type MediumStats struct {
	Failures  int
	MeanMTTR  float64
	totalMTTR float64
}

// FailuresByMedium attributes every record and aggregates count and mean
// repair time per medium.
func (inv *Inventory) FailuresByMedium(downs []backbone.LinkDown) (map[Medium]MediumStats, error) {
	out := make(map[Medium]MediumStats)
	for _, d := range downs {
		seg, err := inv.Attribute(d)
		if err != nil {
			return nil, err
		}
		s := out[seg.Medium]
		s.Failures++
		s.totalMTTR += d.Duration()
		out[seg.Medium] = s
	}
	for m, s := range out {
		if s.Failures > 0 {
			s.MeanMTTR = s.totalMTTR / float64(s.Failures)
		}
		out[m] = s
	}
	return out, nil
}
