package topology

import "fmt"

// ClusterSpec sizes a classic cluster-based data center (Figure 1, Region A).
type ClusterSpec struct {
	// DC and Region name the data center and its region.
	DC, Region string
	// Clusters is the number of clusters. Each cluster has exactly four
	// CSWs (§3.1).
	Clusters int
	// RacksPerCluster is the number of RSWs per cluster; each RSW links to
	// all four of its cluster's CSWs.
	RacksPerCluster int
	// CSAs is the number of cluster switch aggregators; every CSW links to
	// every CSA. Defaults to 2 when zero.
	CSAs int
	// Cores is the number of core devices; every CSA links to every Core.
	// Defaults to 8 (the provisioning §5.2 describes) when zero.
	Cores int
}

// FabricSpec sizes a data center fabric (Figure 1, Region B).
type FabricSpec struct {
	// DC and Region name the data center and its region.
	DC, Region string
	// Pods is the number of pods. Each pod has exactly four FSWs and each
	// RSW links to all four (the 1:4 ratio of §3.1).
	Pods int
	// RacksPerPod is the number of RSWs per pod.
	RacksPerPod int
	// SpinePlanes is the number of spine planes; FSW i of every pod links
	// to the SSWs of plane i mod SpinePlanes. Defaults to 4 when zero.
	SpinePlanes int
	// SSWsPerPlane is the number of spine switches per plane. Defaults to
	// 4 when zero.
	SSWsPerPlane int
	// ESWs is the number of edge switches; every SSW links to every ESW.
	// Defaults to 4 when zero.
	ESWs int
	// Cores is the number of core devices; every ESW links to every Core.
	// Defaults to 8 when zero.
	Cores int
}

// BuildCluster constructs a cluster-design data center inside n and returns
// the names of its Core devices (the attachment points for the backbone).
func BuildCluster(n *Network, spec ClusterSpec) ([]string, error) {
	if spec.Clusters <= 0 || spec.RacksPerCluster <= 0 {
		return nil, fmt.Errorf("topology: cluster spec needs clusters and racks, got %+v", spec)
	}
	if spec.CSAs == 0 {
		spec.CSAs = 2
	}
	if spec.Cores == 0 {
		spec.Cores = 8
	}

	cores := make([]string, 0, spec.Cores)
	for i := 1; i <= spec.Cores; i++ {
		name := MakeName(Core, i, "", spec.DC, spec.Region)
		if err := n.AddDevice(Device{Name: name, Type: Core, DC: spec.DC, Region: spec.Region}); err != nil {
			return nil, err
		}
		cores = append(cores, name)
	}
	csas := make([]string, 0, spec.CSAs)
	for i := 1; i <= spec.CSAs; i++ {
		name := MakeName(CSA, i, "", spec.DC, spec.Region)
		if err := n.AddDevice(Device{Name: name, Type: CSA, DC: spec.DC, Region: spec.Region}); err != nil {
			return nil, err
		}
		csas = append(csas, name)
		for _, c := range cores {
			if err := n.AddLink(name, c); err != nil {
				return nil, err
			}
		}
	}

	rswOrdinal := 0
	for cl := 1; cl <= spec.Clusters; cl++ {
		unit := fmt.Sprintf("cl%03d", cl)
		csws := make([]string, 0, 4)
		for i := 1; i <= 4; i++ {
			name := MakeName(CSW, (cl-1)*4+i, unit, spec.DC, spec.Region)
			if err := n.AddDevice(Device{Name: name, Type: CSW, DC: spec.DC, Region: spec.Region, Unit: unit}); err != nil {
				return nil, err
			}
			csws = append(csws, name)
			for _, a := range csas {
				if err := n.AddLink(name, a); err != nil {
					return nil, err
				}
			}
		}
		for r := 1; r <= spec.RacksPerCluster; r++ {
			rswOrdinal++
			name := MakeName(RSW, rswOrdinal, unit, spec.DC, spec.Region)
			if err := n.AddDevice(Device{Name: name, Type: RSW, DC: spec.DC, Region: spec.Region, Unit: unit}); err != nil {
				return nil, err
			}
			for _, c := range csws {
				if err := n.AddLink(name, c); err != nil {
					return nil, err
				}
			}
		}
	}
	return cores, nil
}

// BuildFabric constructs a fabric-design data center inside n and returns
// the names of its Core devices.
func BuildFabric(n *Network, spec FabricSpec) ([]string, error) {
	if spec.Pods <= 0 || spec.RacksPerPod <= 0 {
		return nil, fmt.Errorf("topology: fabric spec needs pods and racks, got %+v", spec)
	}
	if spec.SpinePlanes == 0 {
		spec.SpinePlanes = 4
	}
	if spec.SSWsPerPlane == 0 {
		spec.SSWsPerPlane = 4
	}
	if spec.ESWs == 0 {
		spec.ESWs = 4
	}
	if spec.Cores == 0 {
		spec.Cores = 8
	}

	cores := make([]string, 0, spec.Cores)
	for i := 1; i <= spec.Cores; i++ {
		name := MakeName(Core, i, "", spec.DC, spec.Region)
		if err := n.AddDevice(Device{Name: name, Type: Core, DC: spec.DC, Region: spec.Region}); err != nil {
			return nil, err
		}
		cores = append(cores, name)
	}
	esws := make([]string, 0, spec.ESWs)
	for i := 1; i <= spec.ESWs; i++ {
		name := MakeName(ESW, i, "", spec.DC, spec.Region)
		if err := n.AddDevice(Device{Name: name, Type: ESW, DC: spec.DC, Region: spec.Region}); err != nil {
			return nil, err
		}
		esws = append(esws, name)
		for _, c := range cores {
			if err := n.AddLink(name, c); err != nil {
				return nil, err
			}
		}
	}
	// Spine planes: plane p holds SSWsPerPlane spine switches, each linked
	// to every ESW.
	planes := make([][]string, spec.SpinePlanes)
	ordinal := 0
	for p := 0; p < spec.SpinePlanes; p++ {
		for i := 0; i < spec.SSWsPerPlane; i++ {
			ordinal++
			name := MakeName(SSW, ordinal, "", spec.DC, spec.Region)
			if err := n.AddDevice(Device{Name: name, Type: SSW, DC: spec.DC, Region: spec.Region}); err != nil {
				return nil, err
			}
			planes[p] = append(planes[p], name)
			for _, e := range esws {
				if err := n.AddLink(name, e); err != nil {
					return nil, err
				}
			}
		}
	}

	rswOrdinal, fswOrdinal := 0, 0
	for pod := 1; pod <= spec.Pods; pod++ {
		unit := fmt.Sprintf("pod%03d", pod)
		fsws := make([]string, 0, 4)
		for i := 0; i < 4; i++ {
			fswOrdinal++
			name := MakeName(FSW, fswOrdinal, unit, spec.DC, spec.Region)
			if err := n.AddDevice(Device{Name: name, Type: FSW, DC: spec.DC, Region: spec.Region, Unit: unit}); err != nil {
				return nil, err
			}
			fsws = append(fsws, name)
			// FSW i attaches to spine plane i mod planes.
			for _, s := range planes[i%spec.SpinePlanes] {
				if err := n.AddLink(name, s); err != nil {
					return nil, err
				}
			}
		}
		for r := 1; r <= spec.RacksPerPod; r++ {
			rswOrdinal++
			name := MakeName(RSW, rswOrdinal, unit, spec.DC, spec.Region)
			if err := n.AddDevice(Device{Name: name, Type: RSW, DC: spec.DC, Region: spec.Region, Unit: unit}); err != nil {
				return nil, err
			}
			for _, f := range fsws {
				if err := n.AddLink(name, f); err != nil {
					return nil, err
				}
			}
		}
	}
	return cores, nil
}

// InterconnectCores links every Core in a to every Core in b, modeling the
// core layer that connects data centers within and across regions.
func InterconnectCores(n *Network, a, b []string) error {
	for _, x := range a {
		for _, y := range b {
			if err := n.AddLink(x, y); err != nil {
				return err
			}
		}
	}
	return nil
}
