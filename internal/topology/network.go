package topology

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Network is an undirected device graph. The zero value is empty and ready
// to use via its methods (maps are allocated lazily).
type Network struct {
	devices map[string]*Device
	adj     map[string][]string
	// order preserves insertion order for deterministic iteration.
	order []string

	// mu guards idx, the lazily-built integer-indexed view of the graph
	// that the hot connectivity queries (StrandedRacks) run on. Graph
	// mutations drop it; the next query rebuilds.
	mu  sync.Mutex
	idx *netIndex
}

// netIndex is the flat, integer-indexed form of the graph: device i is
// n.order[i]. Visited/down marks are epoch-stamped scratch arrays, so a
// query costs zero allocations and no clearing — bumping the epoch
// invalidates every previous mark at once.
type netIndex struct {
	id    map[string]int32
	adj   [][]int32
	cores []int32
	rsws  []int32
	seen  []uint32
	down  []uint32
	queue []int32
	epoch uint32
}

// ensureIndex returns the integer index, building it on first use after a
// mutation. Callers must hold n.mu.
func (n *Network) ensureIndex() *netIndex {
	if n.idx != nil {
		return n.idx
	}
	ix := &netIndex{
		id:   make(map[string]int32, len(n.order)),
		adj:  make([][]int32, len(n.order)),
		seen: make([]uint32, len(n.order)),
		down: make([]uint32, len(n.order)),
	}
	for i, name := range n.order {
		ix.id[name] = int32(i)
	}
	for i, name := range n.order {
		nbrs := n.adj[name]
		row := make([]int32, len(nbrs))
		for j, nb := range nbrs {
			row[j] = ix.id[nb]
		}
		ix.adj[i] = row
		switch n.devices[name].Type {
		case Core:
			ix.cores = append(ix.cores, int32(i))
		case RSW:
			ix.rsws = append(ix.rsws, int32(i))
		}
	}
	n.idx = ix
	return ix
}

// nextEpoch advances the scratch-mark epoch, clearing the arrays on the
// (effectively unreachable) wraparound.
func (ix *netIndex) nextEpoch() uint32 {
	if ix.epoch == math.MaxUint32 {
		clear(ix.seen)
		clear(ix.down)
		ix.epoch = 0
	}
	ix.epoch++
	return ix.epoch
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		devices: make(map[string]*Device),
		adj:     make(map[string][]string),
	}
}

// AddDevice inserts d into the graph. It returns an error if a device with
// the same name already exists or the name does not parse to d.Type.
func (n *Network) AddDevice(d Device) error {
	if _, ok := n.devices[d.Name]; ok {
		return fmt.Errorf("topology: duplicate device %q", d.Name)
	}
	if t, err := ParseDeviceName(d.Name); err != nil || t != d.Type {
		return fmt.Errorf("topology: device name %q does not match type %v", d.Name, d.Type)
	}
	dd := d
	n.devices[d.Name] = &dd
	n.order = append(n.order, d.Name)
	n.invalidateIndex()
	return nil
}

func (n *Network) invalidateIndex() {
	n.mu.Lock()
	n.idx = nil
	n.mu.Unlock()
}

// AddLink connects devices a and b. Both must exist; self-links and
// duplicate links are rejected.
func (n *Network) AddLink(a, b string) error {
	if a == b {
		return fmt.Errorf("topology: self-link on %q", a)
	}
	if _, ok := n.devices[a]; !ok {
		return fmt.Errorf("topology: unknown device %q", a)
	}
	if _, ok := n.devices[b]; !ok {
		return fmt.Errorf("topology: unknown device %q", b)
	}
	for _, nb := range n.adj[a] {
		if nb == b {
			return fmt.Errorf("topology: duplicate link %q-%q", a, b)
		}
	}
	n.adj[a] = append(n.adj[a], b)
	n.adj[b] = append(n.adj[b], a)
	n.invalidateIndex()
	return nil
}

// Device returns the named device, or nil if absent.
func (n *Network) Device(name string) *Device { return n.devices[name] }

// Devices returns all devices in insertion order.
func (n *Network) Devices() []*Device {
	out := make([]*Device, 0, len(n.order))
	for _, name := range n.order {
		out = append(out, n.devices[name])
	}
	return out
}

// DevicesOfType returns the devices of type t in insertion order.
func (n *Network) DevicesOfType(t DeviceType) []*Device {
	var out []*Device
	for _, name := range n.order {
		if d := n.devices[name]; d.Type == t {
			out = append(out, d)
		}
	}
	return out
}

// Neighbors returns the names adjacent to name (shared slice: callers must
// not mutate).
func (n *Network) Neighbors(name string) []string { return n.adj[name] }

// Degree returns the number of links incident to name.
func (n *Network) Degree(name string) int { return len(n.adj[name]) }

// NumDevices returns the device count.
func (n *Network) NumDevices() int { return len(n.devices) }

// NumLinks returns the link count.
func (n *Network) NumLinks() int {
	total := 0
	for _, nbrs := range n.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Population counts devices by type.
func (n *Network) Population() map[DeviceType]int {
	pop := make(map[DeviceType]int)
	for _, d := range n.devices {
		pop[d.Type]++
	}
	return pop
}

// Reachable reports whether a path exists from src to dst avoiding the
// devices in down (both endpoints must themselves be up).
func (n *Network) Reachable(src, dst string, down map[string]bool) bool {
	if down[src] || down[dst] {
		return false
	}
	if _, ok := n.devices[src]; !ok {
		return false
	}
	if src == dst {
		return true
	}
	seen := map[string]bool{src: true}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range n.adj[cur] {
			if seen[nb] || down[nb] {
				continue
			}
			if nb == dst {
				return true
			}
			seen[nb] = true
			queue = append(queue, nb)
		}
	}
	return false
}

// ReachableSet returns every device reachable from src avoiding down,
// including src itself. It returns nil if src is down or unknown.
func (n *Network) ReachableSet(src string, down map[string]bool) map[string]bool {
	if down[src] {
		return nil
	}
	if _, ok := n.devices[src]; !ok {
		return nil
	}
	seen := map[string]bool{src: true}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range n.adj[cur] {
			if seen[nb] || down[nb] {
				continue
			}
			seen[nb] = true
			queue = append(queue, nb)
		}
	}
	return seen
}

// DisjointPaths returns the number of node-disjoint paths between src and
// dst (excluding the endpoints themselves), computed by iterative BFS with
// interior-node removal. It is exact for the layered graphs built here and
// is the path-diversity measure used by the service impact model.
func (n *Network) DisjointPaths(src, dst string) int {
	if src == dst {
		return 0
	}
	removed := make(map[string]bool)
	count := 0
	for {
		path := n.shortestPath(src, dst, removed)
		if path == nil {
			return count
		}
		count++
		for _, v := range path[1 : len(path)-1] {
			removed[v] = true
		}
		if len(path) == 2 {
			// Directly linked: a direct edge is one path; no interior
			// nodes to remove, so stop to avoid counting it forever.
			return count
		}
	}
}

func (n *Network) shortestPath(src, dst string, down map[string]bool) []string {
	if down[src] || down[dst] {
		return nil
	}
	if _, ok := n.devices[src]; !ok {
		return nil
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			var path []string
			for v := dst; ; v = prev[v] {
				path = append(path, v)
				if v == src {
					break
				}
			}
			// Reverse in place.
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		for _, nb := range n.adj[cur] {
			if down[nb] {
				continue
			}
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			queue = append(queue, nb)
		}
	}
	return nil
}

// StrandedRacks returns the RSWs that can no longer reach any Core device
// when the devices in down fail. A stranded rack has lost all north-south
// connectivity — the paper's "partitioned connectivity" service impact.
//
// The graph is undirected, so "rack reaches some core" is "some core
// reaches the rack": one multi-source BFS seeded from every live Core
// answers all racks at once, instead of one BFS per rack. On the
// representative topology that turns the dominant per-incident cost into
// a single linear pass, and the epoch-stamped scratch index makes it
// allocation-free. Safe for concurrent use.
func (n *Network) StrandedRacks(down map[string]bool) []string {
	n.mu.Lock()
	ix := n.ensureIndex()
	epoch := ix.nextEpoch()
	for name, isDown := range down {
		if !isDown {
			continue
		}
		if i, ok := ix.id[name]; ok {
			ix.down[i] = epoch
		}
	}
	queue := ix.queue[:0]
	for _, c := range ix.cores {
		if ix.down[c] != epoch {
			ix.seen[c] = epoch
			queue = append(queue, c)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		for _, nb := range ix.adj[queue[qi]] {
			if ix.seen[nb] != epoch && ix.down[nb] != epoch {
				ix.seen[nb] = epoch
				queue = append(queue, nb)
			}
		}
	}
	ix.queue = queue
	var stranded []string
	for _, r := range ix.rsws {
		if ix.seen[r] != epoch {
			stranded = append(stranded, n.order[r])
		}
	}
	n.mu.Unlock()
	sort.Strings(stranded)
	return stranded
}

// DownstreamRacks returns how many RSWs route through the named device to
// reach a Core: the count of racks whose Core connectivity degrades (loses
// at least the failed device's paths) when it fails. For an RSW it returns
// 1 (itself). This realizes §5.4's observation that devices with higher
// bisection bandwidth affect a larger number of connected downstream
// devices.
func (n *Network) DownstreamRacks(name string) int {
	d := n.devices[name]
	if d == nil {
		return 0
	}
	if d.Type == RSW {
		return 1
	}
	reach := n.ReachableSet(name, nil)
	count := 0
	for _, rsw := range n.DevicesOfType(RSW) {
		if reach[rsw.Name] && n.sameSide(d, n.devices[rsw.Name]) {
			count++
		}
	}
	return count
}

func (n *Network) sameSide(agg, rsw *Device) bool {
	switch agg.Type {
	case Core, BBR:
		return true
	case CSA, ESW, SSW:
		return agg.DC == rsw.DC
	default: // CSW, FSW aggregate within a unit
		return agg.DC == rsw.DC && agg.Unit == rsw.Unit
	}
}
