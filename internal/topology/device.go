// Package topology models the data center network graph of the study:
// regions containing data centers built with either the classic cluster
// design (RSW → CSW → CSA → Core) or the data center fabric design
// (RSW → FSW → SSW → ESW → Core), plus the backbone routers that connect
// regions to the WAN (§3 of the paper).
//
// Devices follow the naming convention §4.3.1 describes: every device name
// is prefixed with its lower-case type ("rsw.", "csw.", …), and the incident
// classifier recovers the device type by parsing that prefix.
package topology

import (
	"fmt"
	"strings"
)

// DeviceType enumerates the network device types of Figure 1.
type DeviceType int

const (
	// RSW is a rack switch (top-of-rack), present in both designs.
	RSW DeviceType = iota
	// CSW is a cluster switch (cluster design).
	CSW
	// CSA is a cluster switch aggregator (cluster design).
	CSA
	// FSW is a fabric switch (fabric design).
	FSW
	// SSW is a spine switch (fabric design).
	SSW
	// ESW is an edge switch (fabric design).
	ESW
	// Core is a core network device connecting data centers and the backbone.
	Core
	// BBR is a backbone router located in an edge node.
	BBR

	numDeviceTypes = int(BBR) + 1
)

// DeviceTypes lists every device type in a stable display order (the order
// the paper's figures use: Core, CSA, CSW, ESW, SSW, FSW, RSW) followed by
// BBR.
var DeviceTypes = []DeviceType{Core, CSA, CSW, ESW, SSW, FSW, RSW, BBR}

// IntraDCTypes lists the device types that appear in the intra-data-center
// analyses (Figures 2–13), in the paper's display order.
var IntraDCTypes = []DeviceType{Core, CSA, CSW, ESW, SSW, FSW, RSW}

var deviceTypeNames = [numDeviceTypes]string{
	RSW: "RSW", CSW: "CSW", CSA: "CSA", FSW: "FSW",
	SSW: "SSW", ESW: "ESW", Core: "Core", BBR: "BBR",
}

// String returns the display name used in the paper's figures.
func (t DeviceType) String() string {
	if t < 0 || int(t) >= numDeviceTypes {
		return fmt.Sprintf("DeviceType(%d)", int(t))
	}
	return deviceTypeNames[t]
}

// Prefix returns the lower-case name prefix of the naming convention, e.g.
// "rsw" for rack switches.
func (t DeviceType) Prefix() string { return strings.ToLower(t.String()) }

// Design identifies which network design a device type belongs to.
type Design int

const (
	// DesignShared marks device types present in both designs (RSW, Core)
	// or outside them (BBR).
	DesignShared Design = iota
	// DesignCluster marks classic cluster-network device types (CSA, CSW).
	DesignCluster
	// DesignFabric marks data center fabric device types (ESW, SSW, FSW).
	DesignFabric
)

// String returns the design's display name.
func (d Design) String() string {
	switch d {
	case DesignCluster:
		return "Cluster"
	case DesignFabric:
		return "Fabric"
	default:
		return "Shared"
	}
}

// Design returns the network design the device type belongs to, following
// §4.3.1: CSA and CSW belong to cluster networks; ESW, SSW, and FSW belong
// to the fabric.
func (t DeviceType) Design() Design {
	switch t {
	case CSA, CSW:
		return DesignCluster
	case ESW, SSW, FSW:
		return DesignFabric
	default:
		return DesignShared
	}
}

// BisectionRank orders device types by the share of traffic that transits
// them (a proxy for bisection bandwidth): higher rank ⇒ more aggregated
// downstream capacity ⇒ wider blast radius on failure (§5.2's first
// observation). Core is highest; RSW lowest.
func (t DeviceType) BisectionRank() int {
	switch t {
	case Core:
		return 6
	case CSA:
		return 5
	case ESW:
		return 4
	case SSW:
		return 3
	case CSW:
		return 2
	case FSW:
		return 1
	default: // RSW, BBR
		return 0
	}
}

// Commodity reports whether the device type is built from commodity chips
// running Facebook's own software stack (fabric devices and RSWs since
// 2013), as opposed to proprietary third-party vendor hardware (Cores and
// CSAs, §5.2).
func (t DeviceType) Commodity() bool {
	switch t {
	case FSW, SSW, ESW, RSW:
		return true
	default:
		return false
	}
}

// ParseDeviceName recovers the device type from a device name using the
// prefix-based naming convention ("rsw001.p1.dc1.ra" → RSW). It returns an
// error when the prefix matches no known type.
func ParseDeviceName(name string) (DeviceType, error) {
	lower := strings.ToLower(name)
	for _, t := range DeviceTypes {
		p := t.Prefix()
		if strings.HasPrefix(lower, p) {
			rest := lower[len(p):]
			if rest == "" || !isLetter(rest[0]) {
				return t, nil
			}
		}
	}
	return 0, fmt.Errorf("topology: unrecognized device name %q", name)
}

func isLetter(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

// Device is a single network device in the graph.
type Device struct {
	// Name is the unique, machine-understandable device name, prefixed
	// with the device type per the naming convention.
	Name string
	// Type is the device type.
	Type DeviceType
	// DC is the data center the device sits in ("" for backbone routers).
	DC string
	// Region is the region containing the data center or edge.
	Region string
	// Unit is the deployment unit within the data center: the cluster for
	// cluster networks, the pod for fabric networks, or "" for devices
	// above that level.
	Unit string
}

// MakeName builds a canonical device name: prefix + ordinal, dot-joined with
// the unit, data center and region (empty parts are skipped), e.g.
// "rsw004.pod002.dc1.regionb".
func MakeName(t DeviceType, ordinal int, unit, dc, region string) string {
	parts := []string{fmt.Sprintf("%s%03d", t.Prefix(), ordinal)}
	for _, p := range []string{unit, dc, region} {
		if p != "" {
			parts = append(parts, strings.ToLower(p))
		}
	}
	return strings.Join(parts, ".")
}
