package topology

import "testing"

// FuzzParseDeviceName checks the name classifier never panics and stays
// consistent with MakeName.
func FuzzParseDeviceName(f *testing.F) {
	f.Add("rsw001.pod001.dc1.regiona")
	f.Add("core005")
	f.Add("")
	f.Add("RSW")
	f.Add("rswitch")
	f.Add("csa.csw.rsw")
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, name string) {
		dt, err := ParseDeviceName(name)
		if err != nil {
			return
		}
		// An accepted name must start with the type's prefix
		// (case-insensitively); re-deriving the prefix must agree.
		prefix := dt.Prefix()
		if len(name) < len(prefix) {
			t.Fatalf("accepted %q shorter than prefix %q", name, prefix)
		}
		for i := 0; i < len(prefix); i++ {
			c := name[i]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != prefix[i] {
				t.Fatalf("accepted %q does not carry prefix %q", name, prefix)
			}
		}
	})
}

// FuzzMakeName checks generated names always classify back to their type.
func FuzzMakeName(f *testing.F) {
	f.Add(uint8(0), 1, "pod001", "dc1", "regiona")
	f.Add(uint8(7), 999, "", "", "")
	f.Fuzz(func(t *testing.T, typ uint8, ordinal int, unit, dc, region string) {
		dt := DeviceTypes[int(typ)%len(DeviceTypes)]
		name := MakeName(dt, ordinal, unit, dc, region)
		got, err := ParseDeviceName(name)
		if err != nil {
			t.Fatalf("MakeName produced unparseable %q: %v", name, err)
		}
		if got != dt {
			t.Fatalf("MakeName(%v) classified as %v (%q)", dt, got, name)
		}
	})
}
