package topology

import (
	"sort"
	"testing"
	"testing/quick"

	"dcnr/internal/simrand"
)

func TestDeviceTypeString(t *testing.T) {
	cases := map[DeviceType]string{
		RSW: "RSW", CSW: "CSW", CSA: "CSA", FSW: "FSW",
		SSW: "SSW", ESW: "ESW", Core: "Core", BBR: "BBR",
	}
	for dt, want := range cases {
		if got := dt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", dt, got, want)
		}
	}
	if got := DeviceType(99).String(); got != "DeviceType(99)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

func TestDesignClassification(t *testing.T) {
	if CSA.Design() != DesignCluster || CSW.Design() != DesignCluster {
		t.Error("CSA/CSW must be cluster design")
	}
	for _, dt := range []DeviceType{ESW, SSW, FSW} {
		if dt.Design() != DesignFabric {
			t.Errorf("%v must be fabric design", dt)
		}
	}
	for _, dt := range []DeviceType{RSW, Core, BBR} {
		if dt.Design() != DesignShared {
			t.Errorf("%v must be shared", dt)
		}
	}
	if DesignCluster.String() != "Cluster" || DesignFabric.String() != "Fabric" || DesignShared.String() != "Shared" {
		t.Error("Design String values wrong")
	}
}

func TestBisectionRankOrdering(t *testing.T) {
	// §5.2: Core and CSA have the highest bisection bandwidth; RSW lowest.
	if !(Core.BisectionRank() > CSA.BisectionRank()) {
		t.Error("Core must outrank CSA")
	}
	if !(CSA.BisectionRank() > CSW.BisectionRank()) {
		t.Error("CSA must outrank CSW")
	}
	if !(FSW.BisectionRank() > RSW.BisectionRank()) {
		t.Error("FSW must outrank RSW")
	}
}

func TestCommodity(t *testing.T) {
	for _, dt := range []DeviceType{FSW, SSW, ESW, RSW} {
		if !dt.Commodity() {
			t.Errorf("%v should be commodity", dt)
		}
	}
	for _, dt := range []DeviceType{Core, CSA, CSW, BBR} {
		if dt.Commodity() {
			t.Errorf("%v should not be commodity", dt)
		}
	}
}

func TestParseDeviceName(t *testing.T) {
	cases := map[string]DeviceType{
		"rsw001.pod002.dc1.regiona": RSW,
		"csw004.cl001.dc2.regiona":  CSW,
		"csa001.dc2.regiona":        CSA,
		"fsw016.pod004.dc3.regionb": FSW,
		"ssw002.dc3.regionb":        SSW,
		"esw001.dc3.regionb":        ESW,
		"core005.dc1.regiona":       Core,
		"bbr001.edge1":              BBR,
		"RSW9.X":                    RSW, // case-insensitive
	}
	for name, want := range cases {
		got, err := ParseDeviceName(name)
		if err != nil {
			t.Errorf("ParseDeviceName(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("ParseDeviceName(%q) = %v, want %v", name, got, want)
		}
	}
	for _, bad := range []string{"", "xyz001", "switch1", "rswitch1"} {
		if _, err := ParseDeviceName(bad); err == nil {
			t.Errorf("ParseDeviceName(%q): want error", bad)
		}
	}
}

func TestMakeNameRoundTrips(t *testing.T) {
	f := func(ord uint8) bool {
		for _, dt := range DeviceTypes {
			name := MakeName(dt, int(ord), "u1", "dc1", "r1")
			got, err := ParseDeviceName(name)
			if err != nil || got != dt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddDeviceValidation(t *testing.T) {
	n := NewNetwork()
	d := Device{Name: "rsw001", Type: RSW}
	if err := n.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	if err := n.AddDevice(d); err == nil {
		t.Error("duplicate device accepted")
	}
	if err := n.AddDevice(Device{Name: "rsw002", Type: Core}); err == nil {
		t.Error("name/type mismatch accepted")
	}
}

func TestAddLinkValidation(t *testing.T) {
	n := NewNetwork()
	mustAdd(t, n, Device{Name: "rsw001", Type: RSW})
	mustAdd(t, n, Device{Name: "csw001", Type: CSW})
	if err := n.AddLink("rsw001", "csw001"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("rsw001", "csw001"); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := n.AddLink("csw001", "rsw001"); err == nil {
		t.Error("reversed duplicate link accepted")
	}
	if err := n.AddLink("rsw001", "rsw001"); err == nil {
		t.Error("self link accepted")
	}
	if err := n.AddLink("rsw001", "nope"); err == nil {
		t.Error("link to unknown device accepted")
	}
	if n.NumLinks() != 1 {
		t.Errorf("NumLinks = %d", n.NumLinks())
	}
}

func mustAdd(t *testing.T, n *Network, d Device) {
	t.Helper()
	if err := n.AddDevice(d); err != nil {
		t.Fatal(err)
	}
}

func buildTestCluster(t *testing.T) (*Network, []string) {
	t.Helper()
	n := NewNetwork()
	cores, err := BuildCluster(n, ClusterSpec{
		DC: "dc1", Region: "ra", Clusters: 3, RacksPerCluster: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, cores
}

func buildTestFabric(t *testing.T) (*Network, []string) {
	t.Helper()
	n := NewNetwork()
	cores, err := BuildFabric(n, FabricSpec{
		DC: "dc2", Region: "rb", Pods: 3, RacksPerPod: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, cores
}

func TestBuildClusterShape(t *testing.T) {
	n, cores := buildTestCluster(t)
	pop := n.Population()
	if pop[Core] != 8 || len(cores) != 8 {
		t.Errorf("Cores = %d", pop[Core])
	}
	if pop[CSA] != 2 {
		t.Errorf("CSAs = %d", pop[CSA])
	}
	if pop[CSW] != 12 { // 3 clusters x 4 CSWs
		t.Errorf("CSWs = %d", pop[CSW])
	}
	if pop[RSW] != 24 {
		t.Errorf("RSWs = %d", pop[RSW])
	}
	// Every RSW connects to exactly its cluster's 4 CSWs.
	for _, rsw := range n.DevicesOfType(RSW) {
		if n.Degree(rsw.Name) != 4 {
			t.Errorf("RSW %s degree = %d, want 4", rsw.Name, n.Degree(rsw.Name))
		}
		for _, nb := range n.Neighbors(rsw.Name) {
			d := n.Device(nb)
			if d.Type != CSW || d.Unit != rsw.Unit {
				t.Errorf("RSW %s linked to %s (type %v unit %s)", rsw.Name, nb, d.Type, d.Unit)
			}
		}
	}
}

func TestBuildFabricShape(t *testing.T) {
	n, cores := buildTestFabric(t)
	pop := n.Population()
	if pop[Core] != 8 || len(cores) != 8 {
		t.Errorf("Cores = %d", pop[Core])
	}
	if pop[ESW] != 4 || pop[SSW] != 16 || pop[FSW] != 12 || pop[RSW] != 24 {
		t.Errorf("population = %v", pop)
	}
	// 1:4 RSW:FSW connectivity.
	for _, rsw := range n.DevicesOfType(RSW) {
		if n.Degree(rsw.Name) != 4 {
			t.Errorf("RSW %s degree = %d", rsw.Name, n.Degree(rsw.Name))
		}
	}
}

func TestBuildSpecValidation(t *testing.T) {
	if _, err := BuildCluster(NewNetwork(), ClusterSpec{}); err == nil {
		t.Error("empty cluster spec accepted")
	}
	if _, err := BuildFabric(NewNetwork(), FabricSpec{}); err == nil {
		t.Error("empty fabric spec accepted")
	}
}

func TestReachability(t *testing.T) {
	n, cores := buildTestCluster(t)
	rsw := n.DevicesOfType(RSW)[0].Name
	if !n.Reachable(rsw, cores[0], nil) {
		t.Fatal("RSW cannot reach Core in healthy network")
	}
	// Kill all 4 CSWs of the RSW's cluster: it loses Core connectivity.
	down := map[string]bool{}
	for _, nb := range n.Neighbors(rsw) {
		down[nb] = true
	}
	if n.Reachable(rsw, cores[0], down) {
		t.Error("RSW still reaches Core with all its CSWs down")
	}
	// One CSW down: still reachable (redundancy masks it).
	down2 := map[string]bool{n.Neighbors(rsw)[0]: true}
	if !n.Reachable(rsw, cores[0], down2) {
		t.Error("single CSW failure must be masked by redundancy")
	}
}

func TestReachableEdgeCases(t *testing.T) {
	n, _ := buildTestCluster(t)
	rsw := n.DevicesOfType(RSW)[0].Name
	if !n.Reachable(rsw, rsw, nil) {
		t.Error("device must reach itself")
	}
	if n.Reachable(rsw, rsw, map[string]bool{rsw: true}) {
		t.Error("down device reaches itself")
	}
	if n.Reachable("ghost", rsw, nil) {
		t.Error("unknown src reachable")
	}
	if n.ReachableSet("ghost", nil) != nil {
		t.Error("ReachableSet of unknown device not nil")
	}
}

func TestDisjointPaths(t *testing.T) {
	n, cores := buildTestCluster(t)
	rsw := n.DevicesOfType(RSW)[0].Name
	// RSW has 4 CSWs, but every path must then cross one of only 2 CSAs:
	// the CSA layer bottlenecks node-disjoint paths at 2.
	if got := n.DisjointPaths(rsw, cores[0]); got != 2 {
		t.Errorf("DisjointPaths(rsw, core) = %d, want 2", got)
	}
	if got := n.DisjointPaths(rsw, rsw); got != 0 {
		t.Errorf("DisjointPaths(x, x) = %d, want 0", got)
	}
}

func TestDisjointPathsDirectLink(t *testing.T) {
	n := NewNetwork()
	mustAdd(t, n, Device{Name: "core001", Type: Core})
	mustAdd(t, n, Device{Name: "core002", Type: Core})
	if err := n.AddLink("core001", "core002"); err != nil {
		t.Fatal(err)
	}
	if got := n.DisjointPaths("core001", "core002"); got != 1 {
		t.Errorf("directly linked DisjointPaths = %d, want 1", got)
	}
}

func TestStrandedRacks(t *testing.T) {
	n, _ := buildTestCluster(t)
	if got := n.StrandedRacks(nil); len(got) != 0 {
		t.Errorf("healthy network has stranded racks: %v", got)
	}
	// Take down both CSAs: every rack loses Core connectivity.
	down := map[string]bool{}
	for _, csa := range n.DevicesOfType(CSA) {
		down[csa.Name] = true
	}
	if got := n.StrandedRacks(down); len(got) != 24 {
		t.Errorf("stranded = %d, want all 24", len(got))
	}
	// One CSA down: nothing stranded (path diversity).
	down1 := map[string]bool{n.DevicesOfType(CSA)[0].Name: true}
	if got := n.StrandedRacks(down1); len(got) != 0 {
		t.Errorf("single CSA failure stranded %d racks", len(got))
	}
}

func TestDownstreamRacksOrdering(t *testing.T) {
	// §5.4: higher-bisection devices affect more downstream racks.
	n, _ := buildTestCluster(t)
	core := n.DevicesOfType(Core)[0].Name
	csa := n.DevicesOfType(CSA)[0].Name
	csw := n.DevicesOfType(CSW)[0].Name
	rsw := n.DevicesOfType(RSW)[0].Name
	dCore, dCSA, dCSW, dRSW := n.DownstreamRacks(core), n.DownstreamRacks(csa), n.DownstreamRacks(csw), n.DownstreamRacks(rsw)
	if dRSW != 1 {
		t.Errorf("RSW downstream = %d, want 1", dRSW)
	}
	if !(dCore >= dCSA && dCSA > dCSW && dCSW > dRSW) {
		t.Errorf("downstream ordering violated: core=%d csa=%d csw=%d rsw=%d", dCore, dCSA, dCSW, dRSW)
	}
	if dCSW != 8 { // a CSW serves its cluster's 8 racks
		t.Errorf("CSW downstream = %d, want 8", dCSW)
	}
	if n.DownstreamRacks("ghost") != 0 {
		t.Error("unknown device downstream != 0")
	}
}

func TestInterconnectCores(t *testing.T) {
	n := NewNetwork()
	c1, err := BuildCluster(n, ClusterSpec{DC: "dc1", Region: "ra", Clusters: 1, RacksPerCluster: 2})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildFabric(n, FabricSpec{DC: "dc2", Region: "ra", Pods: 1, RacksPerPod: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := InterconnectCores(n, c1, c2); err != nil {
		t.Fatal(err)
	}
	// Cross-DC reachability: an RSW in dc1 reaches a core in dc2.
	var rswDC1 string
	for _, d := range n.DevicesOfType(RSW) {
		if d.DC == "dc1" {
			rswDC1 = d.Name
			break
		}
	}
	if !n.Reachable(rswDC1, c2[0], nil) {
		t.Error("cross-DC path missing after InterconnectCores")
	}
}

func TestDevicesInsertionOrderDeterministic(t *testing.T) {
	n1, _ := buildTestFabric(t)
	n2, _ := buildTestFabric(t)
	d1, d2 := n1.Devices(), n2.Devices()
	if len(d1) != len(d2) {
		t.Fatal("different device counts")
	}
	for i := range d1 {
		if d1[i].Name != d2[i].Name {
			t.Fatalf("device order differs at %d: %s vs %s", i, d1[i].Name, d2[i].Name)
		}
	}
}

// strandedRacksReference is the original one-BFS-per-rack implementation,
// kept as the oracle for the multi-source rewrite.
func strandedRacksReference(n *Network, down map[string]bool) []string {
	cores := n.DevicesOfType(Core)
	var stranded []string
	for _, rsw := range n.DevicesOfType(RSW) {
		if down[rsw.Name] {
			stranded = append(stranded, rsw.Name)
			continue
		}
		ok := false
		reach := n.ReachableSet(rsw.Name, down)
		for _, c := range cores {
			if reach[c.Name] {
				ok = true
				break
			}
		}
		if !ok {
			stranded = append(stranded, rsw.Name)
		}
	}
	sort.Strings(stranded)
	return stranded
}

func TestStrandedRacksMatchesPerRackReference(t *testing.T) {
	// Random failure sets on a mixed cluster+fabric topology: the
	// multi-source BFS must agree exactly with a per-rack BFS.
	n := NewNetwork()
	c1, err := BuildCluster(n, ClusterSpec{DC: "dc1", Region: "ra", Clusters: 2, RacksPerCluster: 8})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildFabric(n, FabricSpec{DC: "dc2", Region: "ra", Pods: 2, RacksPerPod: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := InterconnectCores(n, c1, c2); err != nil {
		t.Fatal(err)
	}
	devs := n.Devices()
	r := simrand.New(7)
	for trial := 0; trial < 200; trial++ {
		down := map[string]bool{}
		for k := r.Intn(6); k > 0; k-- {
			down[devs[r.Intn(len(devs))].Name] = true
		}
		got := n.StrandedRacks(down)
		want := strandedRacksReference(n, down)
		if len(got) != len(want) {
			t.Fatalf("down=%v: got %d stranded, reference %d", down, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("down=%v: stranded[%d] = %q, reference %q", down, i, got[i], want[i])
			}
		}
	}
	// All cores down strands every rack.
	allCores := map[string]bool{}
	for _, c := range n.DevicesOfType(Core) {
		allCores[c.Name] = true
	}
	if got := n.StrandedRacks(allCores); len(got) != len(n.DevicesOfType(RSW)) {
		t.Errorf("all cores down: stranded = %d, want every rack", len(got))
	}
}

func TestStrandedRacksIndexInvalidatedByMutation(t *testing.T) {
	// The integer index is rebuilt after AddDevice/AddLink, not served
	// stale: a rack linked in after the first query must show up connected.
	n := NewNetwork()
	mustAdd(t, n, Device{Name: "core001", Type: Core})
	mustAdd(t, n, Device{Name: "rsw001.p001.f01.dc1", Type: RSW})
	if got := n.StrandedRacks(nil); len(got) != 1 {
		t.Fatalf("unlinked rack not stranded: %v", got)
	}
	mustAdd(t, n, Device{Name: "fsw001.p001.dc1", Type: FSW})
	if err := n.AddLink("rsw001.p001.f01.dc1", "fsw001.p001.dc1"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("fsw001.p001.dc1", "core001"); err != nil {
		t.Fatal(err)
	}
	if got := n.StrandedRacks(nil); len(got) != 0 {
		t.Errorf("stale index: rack still stranded after linking: %v", got)
	}
}

func BenchmarkStrandedRacks(b *testing.B) {
	n := NewNetwork()
	if _, err := BuildFabric(n, FabricSpec{DC: "dc1", Region: "ra", Pods: 16, RacksPerPod: 48}); err != nil {
		b.Fatal(err)
	}
	down := map[string]bool{n.DevicesOfType(FSW)[0].Name: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.StrandedRacks(down)
	}
}
