package report

import (
	"strings"
	"testing"
)

func TestRenderAlignsColumns(t *testing.T) {
	tb := &Table{
		Title:   "Table 1: repair ratios",
		Note:    "simulated",
		Headers: []string{"Device", "Repair Ratio"},
	}
	tb.AddRow("Core", "75%")
	tb.AddRow("RSW", "99.7%")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "simulated", "Device", "Core", "99.7%", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	var header, row string
	for _, l := range lines {
		if strings.HasPrefix(l, "Device") {
			header = l
		}
		if strings.HasPrefix(l, "Core") {
			row = l
		}
	}
	if strings.Index(header, "Repair") != strings.Index(row, "75%") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestRenderRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"A"}}
	tb.AddRow("x", "extra", "cells")
	tb.AddRow()
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "extra") {
		t.Error("overflow cells dropped")
	}
}

func TestRenderNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("just", "cells")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "---") {
		t.Error("separator printed without headers")
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		12345:    "12345",
		42.5:     "42.5",
		0.123:    "0.123",
		0.00057:  "5.70e-04",
		-1234.56: "-1235",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.341); got != "34.1%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	ks := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if strings.Join(ks, "") != "abc" {
		t.Errorf("SortedKeys = %v", ks)
	}
	is := SortedInts(map[int]bool{3: true, 1: true, 2: true})
	if is[0] != 1 || is[2] != 3 {
		t.Errorf("SortedInts = %v", is)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := &Table{Headers: []string{"Year", "SEVs"}}
	tb.AddRow("2017", "188")
	tb.AddRow("with,comma", "q\"q")
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "Year,SEVs\n") {
		t.Errorf("CSV header missing: %q", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, `"q""q"`) {
		t.Errorf("quote cell not escaped: %q", out)
	}
}
