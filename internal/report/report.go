// Package report renders the study's tables and figure series as aligned
// text, the output format of cmd/repro. Figures become series tables: one
// row per x-value (year or percentile), one column per plotted line.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	// Title is printed above the grid.
	Title string
	// Note, if set, is printed under the title.
	Note string
	// Headers label the columns.
	Headers []string
	// Rows are the data cells; short rows are padded with empty cells.
	Rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)) + "\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with a sensible precision for reliability metrics:
// large values get no decimals, small ones gain precision.
func F(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// SortedKeys returns a map's string keys sorted, for deterministic output.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// SortedInts returns a map's int keys sorted.
func SortedInts[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// RenderCSV writes the table as RFC-4180 CSV (headers first), for piping
// experiment output into plotting tools.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Headers) > 0 {
		if err := cw.Write(t.Headers); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
