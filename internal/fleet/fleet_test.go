package fleet

import (
	"testing"

	"dcnr/internal/stats"
	"dcnr/internal/topology"
)

func TestPopulationBasics(t *testing.T) {
	m := New(1)
	if got := m.Population(2011, topology.FSW); got != 0 {
		t.Errorf("FSW existed before fabric deployment: %d", got)
	}
	if got := m.Population(2017, topology.RSW); got != 68000 {
		t.Errorf("RSW 2017 = %d", got)
	}
	if got := m.Population(2010, topology.RSW); got != 0 {
		t.Errorf("out-of-range year population = %d", got)
	}
	if got := m.Population(2018, topology.Core); got != 0 {
		t.Errorf("out-of-range year population = %d", got)
	}
}

func TestScaleMultipliesUniformly(t *testing.T) {
	m1, m5 := New(1), New(5)
	for _, y := range m1.Years() {
		for _, dt := range topology.IntraDCTypes {
			if 5*m1.Population(y, dt) != m5.Population(y, dt) {
				t.Fatalf("scale not uniform for %v %d", dt, y)
			}
		}
	}
	if m5.Scale() != 5 {
		t.Errorf("Scale = %d", m5.Scale())
	}
}

func TestNewPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestRSWDominatesFleet(t *testing.T) {
	// Figure 11: RSWs are the overwhelming majority of switches every year.
	m := New(1)
	for _, y := range m.Years() {
		rsw := m.Population(y, topology.RSW)
		total := m.TotalPopulation(y)
		if frac := float64(rsw) / float64(total); frac < 0.9 {
			t.Errorf("year %d: RSW fraction = %.3f, want > 0.9", y, frac)
		}
	}
}

func TestFabricRolloutInflection(t *testing.T) {
	// Figure 11: fabric populations appear in 2015 and grow; cluster
	// populations peak around 2014–2015 and then decline.
	m := New(1)
	if m.DesignPopulation(2014, topology.DesignFabric) != 0 {
		t.Error("fabric devices exist before 2015")
	}
	if m.DesignPopulation(2015, topology.DesignFabric) == 0 {
		t.Error("no fabric devices in 2015")
	}
	for y := 2015; y < 2017; y++ {
		if m.DesignPopulation(y+1, topology.DesignFabric) <= m.DesignPopulation(y, topology.DesignFabric) {
			t.Errorf("fabric population not growing %d→%d", y, y+1)
		}
	}
	peak := m.DesignPopulation(2014, topology.DesignCluster)
	if m.DesignPopulation(2017, topology.DesignCluster) >= peak {
		t.Error("cluster population did not decline after its peak")
	}
}

func TestPopulationGrowthMonotone(t *testing.T) {
	// RSW and Core populations grow every year (Figures 6 and 11).
	m := New(1)
	years := m.Years()
	for i := 1; i < len(years); i++ {
		for _, dt := range []topology.DeviceType{topology.RSW, topology.Core} {
			if m.Population(years[i], dt) <= m.Population(years[i-1], dt) {
				t.Errorf("%v population not growing %d→%d", dt, years[i-1], years[i])
			}
		}
	}
}

func TestSwitchesTrackEmployees(t *testing.T) {
	// Figure 6: switch count grows in proportion to employees — a strong
	// positive linear correlation.
	m := New(1)
	var pts []stats.Point
	for _, y := range m.Years() {
		pts = append(pts, stats.Point{
			X: float64(m.Employees(y)),
			Y: float64(m.TotalPopulation(y)),
		})
	}
	r, err := stats.Correlation(pts)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.98 {
		t.Errorf("switches/employees correlation = %.3f, want > 0.98", r)
	}
}

func TestNormalizedPopulation(t *testing.T) {
	m := New(1)
	norm := m.NormalizedPopulation()
	if norm[LastYear] != 1 {
		t.Errorf("final year normalization = %v, want 1", norm[LastYear])
	}
	prev := 0.0
	for _, y := range m.Years() {
		if norm[y] <= prev {
			t.Errorf("normalized population not increasing at %d", y)
		}
		prev = norm[y]
	}
}

func TestDeviceHours(t *testing.T) {
	m := New(1)
	want := float64(68000) * 8760
	if got := m.DeviceHours(2017, topology.RSW); got != want {
		t.Errorf("DeviceHours = %v, want %v", got, want)
	}
}

func TestDesignPopulationPartition(t *testing.T) {
	m := New(1)
	for _, y := range m.Years() {
		cluster := m.DesignPopulation(y, topology.DesignCluster)
		fabric := m.DesignPopulation(y, topology.DesignFabric)
		shared := m.Population(y, topology.RSW) + m.Population(y, topology.Core)
		if cluster+fabric+shared != m.TotalPopulation(y) {
			t.Errorf("year %d: design populations do not partition the fleet", y)
		}
	}
}

func TestFabricClusterPopulationRatio2017(t *testing.T) {
	// Calibration check: the 2017 fabric:cluster population ratio ~1.68
	// combines with the 13%:25% incident-share split to give the paper's
	// 3.2× MTBI ratio (§5.6).
	m := New(1)
	ratio := float64(m.DesignPopulation(2017, topology.DesignFabric)) /
		float64(m.DesignPopulation(2017, topology.DesignCluster))
	if ratio < 1.5 || ratio > 1.9 {
		t.Errorf("fabric:cluster population ratio = %.3f, want ~1.68", ratio)
	}
}

func TestRepresentativeTopology(t *testing.T) {
	n, err := RepresentativeTopology()
	if err != nil {
		t.Fatal(err)
	}
	pop := n.Population()
	for _, dt := range topology.IntraDCTypes {
		if pop[dt] == 0 {
			t.Errorf("representative topology has no %v devices", dt)
		}
	}
	if got := n.StrandedRacks(nil); len(got) != 0 {
		t.Errorf("healthy representative topology strands racks: %v", got)
	}
}

func TestYearsSortedAndComplete(t *testing.T) {
	m := New(1)
	ys := m.Years()
	if len(ys) != NumYears {
		t.Fatalf("Years = %v", ys)
	}
	for i, y := range ys {
		if y != FirstYear+i {
			t.Fatalf("Years = %v", ys)
		}
	}
}
