// Package fleet models the evolution of the simulated device fleet over the
// study period 2011–2017: per-year device populations by type (Figure 11),
// the fabric rollout that begins in 2015, and the employee-count proxy the
// paper uses in Figures 6 and 14.
//
// The populations are calibrated so that, combined with the incident-share
// calibration in package faults, the derived statistics reproduce the
// paper's reported shapes: the 2015 cluster→fabric inflection, CSA incident
// rates exceeding 1.0 in 2013–2014, Core/RSW MTBI near the reported
// 39,495 / 9,958,828 device-hours, and a fabric:cluster MTBI ratio near
// 3.2× (§5.6).
package fleet

import (
	"fmt"

	"dcnr/internal/topology"
)

// Study period bounds (inclusive). The SEV dataset covers 2011–2017; the
// paper labels it "seven years, 2011 to 2018" because collection ran into
// early 2018.
const (
	FirstYear = 2011
	LastYear  = 2017
	NumYears  = LastYear - FirstYear + 1
)

// numTypes sizes the population rows: one column per device type constant.
const numTypes = int(topology.BBR) + 1

// basePopulation holds the unscaled per-year device populations in
// struct-of-arrays form: row year−FirstYear, column the DeviceType
// constant. A population lookup is two array indexes — the fault driver
// and the analysis tables query it inside loops, and the previous
// two-level map paid a hash per level.
var basePopulation = [NumYears][numTypes]int{
	2011 - FirstYear: {topology.Core: 56, topology.CSA: 6, topology.CSW: 320, topology.RSW: 9000},
	2012 - FirstYear: {topology.Core: 88, topology.CSA: 8, topology.CSW: 448, topology.RSW: 14000},
	2013 - FirstYear: {topology.Core: 120, topology.CSA: 10, topology.CSW: 576, topology.RSW: 20000},
	2014 - FirstYear: {topology.Core: 160, topology.CSA: 12, topology.CSW: 704, topology.RSW: 27500},
	2015 - FirstYear: {topology.Core: 200, topology.CSA: 11, topology.CSW: 704, topology.ESW: 24, topology.SSW: 96, topology.FSW: 288, topology.RSW: 38000},
	2016 - FirstYear: {topology.Core: 244, topology.CSA: 9, topology.CSW: 672, topology.ESW: 44, topology.SSW: 176, topology.FSW: 528, topology.RSW: 50000},
	2017 - FirstYear: {topology.Core: 288, topology.CSA: 8, topology.CSW: 640, topology.ESW: 64, topology.SSW: 256, topology.FSW: 768, topology.RSW: 68000},
}

// employees is the full-time employee count per year (publicly reported
// figures the paper cites from Statista for Figure 6), indexed by
// year−FirstYear.
var employees = [NumYears]int{3200, 4619, 6337, 9199, 12691, 17048, 25105}

// FabricDeployYear is the year the fabric design enters the fleet (the
// "Fabric deployed" marker on Figures 3, 5, 7–12).
const FabricDeployYear = 2015

// AutomatedRepairYear is the year automated remediation is enabled
// (§4.1.1: "Starting in 2013").
const AutomatedRepairYear = 2013

// Model exposes the fleet's composition over the study period. Scale
// multiplies every population uniformly; Scale 1 is the unit used
// throughout the tests, and larger scales produce proportionally larger
// datasets without changing any per-device rate.
type Model struct {
	scale int
}

// New returns a Model at the given scale. It panics for scale < 1.
func New(scale int) *Model {
	if scale < 1 {
		panic(fmt.Sprintf("fleet: scale must be >= 1, got %d", scale))
	}
	return &Model{scale: scale}
}

// Scale returns the model's population multiplier.
func (m *Model) Scale() int { return m.scale }

// Population returns the device count of type t deployed during year.
// Years outside the study period (and unknown types) return 0.
func (m *Model) Population(year int, t topology.DeviceType) int {
	if year < FirstYear || year > LastYear || t < 0 || int(t) >= numTypes {
		return 0
	}
	return basePopulation[year-FirstYear][t] * m.scale
}

// Populations returns the device count of every type deployed during
// year, keyed by type. Years outside the study period return an empty map.
func (m *Model) Populations(year int) map[topology.DeviceType]int {
	out := make(map[topology.DeviceType]int, len(topology.IntraDCTypes))
	for _, t := range topology.IntraDCTypes {
		if n := m.Population(year, t); n > 0 {
			out[t] = n
		}
	}
	return out
}

// TotalPopulation returns the total network device count in year.
func (m *Model) TotalPopulation(year int) int {
	total := 0
	for _, t := range topology.IntraDCTypes {
		total += m.Population(year, t)
	}
	return total
}

// DesignPopulation returns the device count belonging to the given network
// design in year (cluster: CSA+CSW; fabric: ESW+SSW+FSW).
func (m *Model) DesignPopulation(year int, d topology.Design) int {
	total := 0
	for _, t := range topology.IntraDCTypes {
		if t.Design() == d {
			total += m.Population(year, t)
		}
	}
	return total
}

// Employees returns the employee-count proxy for year, 0 outside the study
// period.
func (m *Model) Employees(year int) int {
	if year < FirstYear || year > LastYear {
		return 0
	}
	return employees[year-FirstYear]
}

// Years returns the study years in ascending order.
func (m *Model) Years() []int {
	ys := make([]int, 0, NumYears)
	for y := FirstYear; y <= LastYear; y++ {
		ys = append(ys, y)
	}
	return ys
}

// NormalizedPopulation returns the fleet size of each year divided by the
// final year's fleet size (the normalization of Figures 6 and 11).
func (m *Model) NormalizedPopulation() map[int]float64 {
	denom := float64(m.TotalPopulation(LastYear))
	out := make(map[int]float64, NumYears)
	for _, y := range m.Years() {
		out[y] = float64(m.TotalPopulation(y)) / denom
	}
	return out
}

// DeviceHours returns the device-hours accumulated by type t during year
// (population × hours in the year), the denominator of the MTBI metric.
func (m *Model) DeviceHours(year int, t topology.DeviceType) float64 {
	return float64(m.Population(year, t)) * 365 * 24
}

// RepresentativeTopology builds a small two-data-center network (one
// cluster DC, one fabric DC, cores interconnected) whose local redundancy
// structure matches the full fleet's. The service-impact model evaluates
// failures against this graph: redundancy within a cluster or pod is
// scale-invariant, so a compact graph gives the same masked/degraded/outage
// verdicts as a full-size one.
func RepresentativeTopology() (*topology.Network, error) {
	n := topology.NewNetwork()
	clusterCores, err := topology.BuildCluster(n, topology.ClusterSpec{
		DC: "dc1", Region: "regiona", Clusters: 4, RacksPerCluster: 16,
	})
	if err != nil {
		return nil, err
	}
	fabricCores, err := topology.BuildFabric(n, topology.FabricSpec{
		DC: "dc2", Region: "regionb", Pods: 4, RacksPerPod: 16,
	})
	if err != nil {
		return nil, err
	}
	if err := topology.InterconnectCores(n, clusterCores, fabricCores); err != nil {
		return nil, err
	}
	return n, nil
}
