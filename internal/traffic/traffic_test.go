package traffic

import (
	"strings"
	"testing"

	"dcnr/internal/fleet"
	"dcnr/internal/routing"
	"dcnr/internal/simrand"
	"dcnr/internal/topology"
)

func testNet(t *testing.T) *topology.Network {
	t.Helper()
	net, err := fleet.RepresentativeTopology()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGenerateValidDemands(t *testing.T) {
	net := testNet(t)
	demands, err := Generate(net, Config{}, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(demands) != len(net.DevicesOfType(topology.RSW)) {
		t.Errorf("demands = %d, want one per rack", len(demands))
	}
	if err := routing.Validate(net, demands); err != nil {
		t.Fatal(err)
	}
	for _, dm := range demands {
		if dm.Gbps <= 0 {
			t.Fatalf("non-positive demand %+v", dm)
		}
	}
}

func TestGenerateTrafficClasses(t *testing.T) {
	net := testNet(t)
	demands, err := Generate(net, Config{}, simrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	var ingress, egress int
	var ingressVol, egressVol float64
	for _, dm := range demands {
		srcType, _ := topology.ParseDeviceName(dm.Src)
		if srcType == topology.Core {
			ingress++ // user-facing: core → rack
			ingressVol += dm.Gbps
		} else {
			egress++ // bulk / realtime: rack → core
			egressVol += dm.Gbps
		}
	}
	if ingress == 0 || egress == 0 {
		t.Fatalf("one-sided matrix: ingress=%d egress=%d", ingress, egress)
	}
	// §3.2: cross-DC bulk dominates by volume.
	if egressVol <= ingressVol {
		t.Errorf("bulk volume %v should exceed user-facing %v", egressVol, ingressVol)
	}
}

func TestGenerateValidation(t *testing.T) {
	net := testNet(t)
	if _, err := Generate(net, Config{Jitter: 1.5}, simrand.New(1)); err == nil {
		t.Error("jitter > 1 accepted")
	}
	empty := topology.NewNetwork()
	if _, err := Generate(empty, Config{}, simrand.New(1)); err == nil {
		t.Error("rackless network accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	net := testNet(t)
	a, err := Generate(net, Config{}, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(net, Config{}, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("demand %d differs", i)
		}
	}
}

func TestStudyHealthyHasNoLoss(t *testing.T) {
	net := testNet(t)
	demands, err := Generate(net, Config{}, simrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	rep := Study(net, demands, nil)
	if rep.UnroutableGbps != 0 {
		t.Errorf("healthy network lost %v Gb/s", rep.UnroutableGbps)
	}
	if rep.TotalGbps <= 0 || rep.MaxUtilization <= 0 {
		t.Errorf("empty report: %+v", rep)
	}
	if rep.LostFraction() != 0 {
		t.Errorf("LostFraction = %v", rep.LostFraction())
	}
}

func TestFailureIncreasesPeakUtilization(t *testing.T) {
	// §3.1: losing switches concentrates traffic on the survivors.
	net := testNet(t)
	demands, err := Generate(net, Config{}, simrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// Fail 2 of the 4 CSWs in one cluster: its racks still route, but the
	// two survivors carry double the load.
	csws := net.DevicesOfType(topology.CSW)
	unit := csws[0].Unit
	var group []string
	for _, c := range csws {
		if c.Unit == unit {
			group = append(group, c.Name)
		}
	}
	if len(group) != 4 {
		t.Fatalf("cluster CSW group = %v", group)
	}
	down := map[string]bool{group[0]: true, group[1]: true}

	survivorPeak := func(down map[string]bool) float64 {
		r := routing.New(net)
		r.SetDown(down)
		load, unroutable := r.Route(demands)
		if len(unroutable) != 0 {
			t.Fatalf("unroutable with half a CSW group down: %v", unroutable)
		}
		util := r.Utilization(load, nil)
		peak := 0.0
		for _, name := range group[2:] {
			if util[name] > peak {
				peak = util[name]
			}
		}
		return peak
	}
	before := survivorPeak(nil)
	after := survivorPeak(down)
	if after <= before {
		t.Errorf("surviving CSW utilization did not rise: %.4f → %.4f", before, after)
	}
	// With half the group gone, survivors carry roughly double.
	if after < 1.5*before {
		t.Errorf("survivor load rose only %.2fx, want ~2x", after/before)
	}
}

func TestStrandingFailureLosesVolume(t *testing.T) {
	net := testNet(t)
	demands, err := Generate(net, Config{}, simrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Kill both CSAs: the whole cluster DC is cut off from its cores.
	down := map[string]bool{}
	for _, csa := range net.DevicesOfType(topology.CSA) {
		down[csa.Name] = true
	}
	rep := Study(net, demands, down)
	if rep.UnroutableGbps == 0 {
		t.Error("no lost volume despite a partitioned DC")
	}
	if rep.LostFraction() <= 0 || rep.LostFraction() >= 1 {
		t.Errorf("LostFraction = %v", rep.LostFraction())
	}
	if len(rep.Down) != 2 {
		t.Errorf("Down = %v", rep.Down)
	}
}

func TestDescribeLoad(t *testing.T) {
	rep := Report{
		Down:           []string{"csa001"},
		MaxDevice:      "csw001",
		MaxUtilization: 0.95,
		Congested:      []string{"csw001"},
		UnroutableGbps: 10,
		TotalGbps:      100,
	}
	s := DescribeLoad(rep)
	for _, want := range []string{"100 Gb/s", "1 device(s) down", "95%", "csw001", "congested", "10.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("description %q missing %q", s, want)
		}
	}
}

func BenchmarkStudyFullMatrix(b *testing.B) {
	net, err := fleet.RepresentativeTopology()
	if err != nil {
		b.Fatal(err)
	}
	demands, err := Generate(net, Config{}, simrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	down := map[string]bool{net.DevicesOfType(topology.CSW)[0].Name: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Study(net, demands, down)
	}
}

func TestReassignFailsOverToSurvivingCore(t *testing.T) {
	net := testNet(t)
	cores := net.DevicesOfType(topology.Core)
	var dc1Cores []string
	for _, c := range cores {
		if c.DC == "dc1" {
			dc1Cores = append(dc1Cores, c.Name)
		}
	}
	rsw := net.DevicesOfType(topology.RSW)[0].Name
	demands := []routing.Demand{{Src: rsw, Dst: dc1Cores[0], Gbps: 5}}
	down := map[string]bool{dc1Cores[0]: true}

	re := Reassign(net, demands, down)
	if re[0].Dst == dc1Cores[0] {
		t.Error("demand still targets the failed core")
	}
	if netDev := net.Device(re[0].Dst); netDev.DC != "dc1" || netDev.Type != topology.Core {
		t.Errorf("failover target %s not a dc1 core", re[0].Dst)
	}
	// Non-core endpoints are never retargeted.
	demands2 := []routing.Demand{{Src: rsw, Dst: dc1Cores[1], Gbps: 5}}
	re2 := Reassign(net, demands2, map[string]bool{rsw: true})
	if re2[0].Src != rsw {
		t.Error("non-core endpoint retargeted")
	}
	// All cores in the DC down: demand unchanged (and unroutable later).
	allDown := map[string]bool{}
	for _, c := range dc1Cores {
		allDown[c] = true
	}
	re3 := Reassign(net, demands, allDown)
	if re3[0].Dst != dc1Cores[0] {
		t.Error("demand retargeted despite no survivors")
	}
	// Single-core outage in a study loses nothing.
	full, err := Generate(net, Config{}, simrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	rep := Study(net, full, map[string]bool{dc1Cores[0]: true})
	if rep.UnroutableGbps != 0 {
		t.Errorf("single core outage lost %v Gb/s despite failover", rep.UnroutableGbps)
	}
}

func TestMeanPathHops(t *testing.T) {
	net := testNet(t)
	demands, err := Generate(net, Config{}, simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	rep := Study(net, demands, nil)
	// Cluster rack↔core paths are 3 hops, fabric 4: the volume-weighted
	// mean sits between.
	if rep.MeanPathHops < 3 || rep.MeanPathHops > 4 {
		t.Errorf("MeanPathHops = %v, want within [3, 4]", rep.MeanPathHops)
	}
	// A single CSW failure must not shorten paths.
	down := map[string]bool{net.DevicesOfType(topology.CSW)[0].Name: true}
	rep2 := Study(net, demands, down)
	if rep2.MeanPathHops < rep.MeanPathHops-1e-9 {
		t.Errorf("failure shortened paths: %v → %v", rep.MeanPathHops, rep2.MeanPathHops)
	}
}
