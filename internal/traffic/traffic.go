// Package traffic generates demand matrices for the two traffic classes of
// §3.2 and studies how device failures reshape network load.
//
//   - User-facing traffic enters through the core layer (from the backbone
//     routers and edge presences) and fans out to the racks serving web and
//     cache tiers.
//   - Cross-data-center traffic is dominated by bulk transfer streams —
//     replication, distributed storage, batch processing — flowing from
//     storage/batch racks up through the cores toward other data centers.
//
// Combining these demands with the routing package turns the paper's
// qualitative congestion claims into measurements: fail a device, re-route,
// and compare utilization and unroutable volume.
package traffic

import (
	"fmt"
	"sort"
	"strings"

	"dcnr/internal/routing"
	"dcnr/internal/service"
	"dcnr/internal/simrand"
	"dcnr/internal/topology"
)

// Config sizes the demand matrix.
type Config struct {
	// UserFacingGbps is the mean user-facing volume per web/cache rack.
	// Default 8.
	UserFacingGbps float64
	// CrossDCGbps is the mean bulk-transfer volume per storage/batch
	// rack. Default 20 — by volume, cross data center traffic consists
	// primarily of bulk data transfer streams (§3.2).
	CrossDCGbps float64
	// Jitter is the multiplicative spread on volumes (0 = none, 0.5 =
	// ±50% uniform). Default 0.3.
	Jitter float64
}

func (c *Config) applyDefaults() {
	if c.UserFacingGbps == 0 {
		c.UserFacingGbps = 8
	}
	if c.CrossDCGbps == 0 {
		c.CrossDCGbps = 20
	}
	if c.Jitter == 0 {
		c.Jitter = 0.3
	}
}

// Generate builds the demand matrix for net. Rack roles follow the same
// round-robin service placement the impact assessor uses, so web/cache
// racks receive user-facing flows and storage/batch racks originate bulk
// flows. Demands terminate at core devices (the gateway to the backbone).
func Generate(net *topology.Network, cfg Config, rng *simrand.Stream) ([]routing.Demand, error) {
	cfg.applyDefaults()
	if cfg.Jitter < 0 || cfg.Jitter >= 1 {
		return nil, fmt.Errorf("traffic: jitter %v outside [0, 1)", cfg.Jitter)
	}
	racks := net.DevicesOfType(topology.RSW)
	if len(racks) == 0 {
		return nil, fmt.Errorf("traffic: network has no racks")
	}
	coresByDC := make(map[string][]string)
	var dcs []string
	for _, c := range net.DevicesOfType(topology.Core) {
		if len(coresByDC[c.DC]) == 0 {
			dcs = append(dcs, c.DC)
		}
		coresByDC[c.DC] = append(coresByDC[c.DC], c.Name)
	}
	if len(dcs) == 0 {
		return nil, fmt.Errorf("traffic: network has no core devices")
	}

	jitter := func(mean float64) float64 {
		return mean * (1 + cfg.Jitter*(2*rng.Float64()-1))
	}
	var demands []routing.Demand
	for i, rack := range racks {
		role := service.ServiceNames[i%len(service.ServiceNames)]
		cores := coresByDC[rack.DC]
		if len(cores) == 0 {
			continue
		}
		core := cores[rng.Intn(len(cores))]
		switch role {
		case "web", "cache":
			// User-facing: ingress from the backbone through a core
			// down to the serving rack.
			demands = append(demands, routing.Demand{
				Src: core, Dst: rack.Name, Gbps: jitter(cfg.UserFacingGbps),
			})
		case "storage", "batch":
			// Cross-DC bulk: the rack pushes replication traffic up
			// through a core toward a remote region.
			demands = append(demands, routing.Demand{
				Src: rack.Name, Dst: core, Gbps: jitter(cfg.CrossDCGbps),
			})
		default: // realtime: modest bidirectional stream
			demands = append(demands, routing.Demand{
				Src: rack.Name, Dst: core, Gbps: jitter(cfg.UserFacingGbps / 2),
			})
		}
	}
	return demands, nil
}

// Report summarizes network load under one failure scenario.
type Report struct {
	// Down lists the failed devices.
	Down []string
	// MaxDevice and MaxUtilization locate the hottest device.
	MaxDevice      string
	MaxUtilization float64
	// Congested lists devices at or above the congestion threshold.
	Congested []string
	// UnroutableGbps is the demand volume that could not be carried.
	UnroutableGbps float64
	// TotalGbps is the full offered demand volume.
	TotalGbps float64
	// MeanPathHops is the delivered-volume-weighted mean hop count — the
	// latency proxy. Failures that force traffic around a dead layer
	// raise it ("increased latency from congested links", §4.2).
	MeanPathHops float64
}

// LostFraction is the share of offered volume that went undelivered.
func (r Report) LostFraction() float64 {
	if r.TotalGbps == 0 {
		return 0
	}
	return r.UnroutableGbps / r.TotalGbps
}

// CongestionThreshold marks a device as congested at ≥90% utilization.
const CongestionThreshold = 0.9

// Reassign retargets demands whose core endpoint is down to the first
// surviving core in the same data center — the failover that BGP and edge
// routing perform when a core device drops out (§5.2: eight cores per DC
// exist exactly so one can be lost "without any impact"). Demands with no
// surviving core in their DC are returned unchanged (and will be counted
// unroutable).
func Reassign(net *topology.Network, demands []routing.Demand, down map[string]bool) []routing.Demand {
	if len(down) == 0 {
		return demands
	}
	surviving := make(map[string]string) // DC -> first up core
	for _, c := range net.DevicesOfType(topology.Core) {
		if !down[c.Name] && surviving[c.DC] == "" {
			surviving[c.DC] = c.Name
		}
	}
	retarget := func(name string) string {
		if !down[name] {
			return name
		}
		d := net.Device(name)
		if d == nil || d.Type != topology.Core {
			return name
		}
		if alt := surviving[d.DC]; alt != "" {
			return alt
		}
		return name
	}
	out := make([]routing.Demand, len(demands))
	for i, dm := range demands {
		dm.Src = retarget(dm.Src)
		dm.Dst = retarget(dm.Dst)
		out[i] = dm
	}
	return out
}

// Study routes demands with the given devices failed and reports the
// resulting load picture. Demands addressed to failed cores fail over to
// surviving cores in the same data center first (see Reassign).
func Study(net *topology.Network, demands []routing.Demand, down map[string]bool) Report {
	demands = Reassign(net, demands, down)
	r := routing.New(net)
	r.SetDown(down)
	load, unroutable := r.Route(demands)
	util := r.Utilization(load, nil)
	rep := Report{
		Congested: routing.Congested(util, CongestionThreshold),
	}
	for name := range down {
		rep.Down = append(rep.Down, name)
	}
	sort.Strings(rep.Down)
	rep.MaxDevice, rep.MaxUtilization = routing.MaxUtilization(util)
	unrouted := make(map[routing.Demand]bool, len(unroutable))
	for _, dm := range unroutable {
		rep.UnroutableGbps += dm.Gbps
		unrouted[dm] = true
	}
	hopVolume, delivered := 0.0, 0.0
	for _, dm := range demands {
		rep.TotalGbps += dm.Gbps
		if unrouted[dm] {
			continue
		}
		if hops := r.Distance(dm.Src, dm.Dst); hops >= 0 {
			hopVolume += float64(hops) * dm.Gbps
			delivered += dm.Gbps
		}
	}
	if delivered > 0 {
		rep.MeanPathHops = hopVolume / delivered
	}
	return rep
}

// CompareFailure runs Study twice — healthy and with down — and returns
// both reports, quantifying §3.1's "fewer switches … more congestion".
func CompareFailure(net *topology.Network, demands []routing.Demand, down map[string]bool) (healthy, failed Report) {
	return Study(net, demands, nil), Study(net, demands, down)
}

// DescribeLoad renders a short textual summary of a report.
func DescribeLoad(rep Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered %.0f Gb/s", rep.TotalGbps)
	if len(rep.Down) > 0 {
		fmt.Fprintf(&b, ", %d device(s) down", len(rep.Down))
	}
	fmt.Fprintf(&b, ": peak utilization %.0f%% on %s", 100*rep.MaxUtilization, rep.MaxDevice)
	if len(rep.Congested) > 0 {
		fmt.Fprintf(&b, ", %d congested device(s)", len(rep.Congested))
	}
	if rep.UnroutableGbps > 0 {
		fmt.Fprintf(&b, ", %.0f Gb/s undeliverable (%.1f%%)", rep.UnroutableGbps, 100*rep.LostFraction())
	}
	return b.String()
}
