// Package sim is the unified simulation API: one entry point per
// simulated plane (IntraDC, Backbone), each taking a validated config with
// shared observability wiring (observe.Observe) and returning the dataset
// with analysis attached.
//
// The dcnr facade re-exports these types and functions one-to-one; they
// live here so internal orchestrators — the scenario-sweep engine most of
// all — can run simulations without importing the facade. Every config is
// normalized and checked by its Validate method before anything runs, so a
// rejected configuration never burns simulation time and every default is
// applied in exactly one documented place.
package sim

import (
	"fmt"
	"log/slog"

	"dcnr/internal/backbone"
	"dcnr/internal/core"
	"dcnr/internal/faults"
	"dcnr/internal/fleet"
	"dcnr/internal/obs"
	"dcnr/internal/obs/health"
	"dcnr/internal/observe"
	"dcnr/internal/remediation"
	"dcnr/internal/sev"
	"dcnr/internal/tickets"
	"dcnr/internal/topology"
)

// IntraConfig parameterizes the intra-data-center simulation.
type IntraConfig struct {
	// Observe bundles the observability wiring (Metrics, Trace, Health,
	// Logger) shared by every simulation entry point. Prefer it over the
	// deprecated flat fields below.
	observe.Observe
	// Seed roots all randomness; equal seeds give identical histories.
	Seed uint64
	// Scale multiplies the fleet population and incident volumes
	// uniformly. 1 (the default when zero) is the study's unit scale;
	// 5 produces a "thousands of incidents" dataset like the paper's.
	Scale int
	// FromYear and ToYear bound the simulated years, inclusive. Zero
	// values default to the full 2011–2017 study period.
	FromYear, ToYear int
	// DisableRemediation turns off the automated repair engine — the §5.6
	// ablation. Every fault on a remediation-supported device type then
	// escalates to a service-level incident.
	DisableRemediation bool
	// ElevateYear and ElevateFactor (> 1) multiply the fault arrival
	// rate of one simulated year while health targets stay at
	// calibration — the anomaly-injection scenario that drives burn-rate
	// alerts through pending→firing→resolved. Zero values disable it.
	ElevateYear   int
	ElevateFactor float64

	// Metrics, when non-nil, receives counters, gauges, and histograms
	// from the simulation's hot paths.
	//
	// Deprecated: set Observe.Metrics instead. The flat field remains a
	// working passthrough for one release; an explicitly set
	// Observe.Metrics wins.
	Metrics *obs.Registry
	// Trace, when non-nil, records Chrome trace-event spans.
	//
	// Deprecated: set Observe.Trace instead (same passthrough rule as
	// Metrics).
	Trace *obs.Tracer
	// Health, when non-nil, receives every fault, repair, and incident
	// and is evaluated on a daily sim-time tick.
	//
	// Deprecated: set Observe.Health instead (same passthrough rule as
	// Metrics).
	Health *health.Engine
	// Logger, when non-nil, receives structured records carrying the
	// simulation clock.
	//
	// Deprecated: set Observe.Logger instead (same passthrough rule as
	// Metrics).
	Logger *slog.Logger
}

// Observed resolves the effective observability wiring: fields set on the
// embedded Observe struct win, the deprecated flat fields back them up.
func (c IntraConfig) Observed() observe.Observe {
	return c.Observe.Or(observe.Observe{
		Metrics: c.Metrics, Trace: c.Trace, Health: c.Health, Logger: c.Logger,
	})
}

// Validate normalizes the configuration in place and rejects what cannot
// run. It is the single normalization step IntraDC performs — the
// zero-value defaulting that used to be scattered through the entry point
// lives here, so callers can pre-validate a config and know exactly what
// will execute. Calling it again is a no-op.
//
// Normalization: Scale 0 becomes 1, FromYear/ToYear 0 become the study
// bounds, and the deprecated flat observability fields fold into the
// embedded Observe struct. Checks: Scale must be ≥ 0, the year range must
// be ordered and inside [fleet.FirstYear, fleet.LastYear], and an
// elevation (either ElevateYear or ElevateFactor set) needs
// ElevateFactor > 1 with ElevateYear inside the simulated range.
func (c *IntraConfig) Validate() error {
	if c.Scale < 0 {
		return fmt.Errorf("sim: Scale must be >= 0, got %d", c.Scale)
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.FromYear == 0 {
		c.FromYear = fleet.FirstYear
	}
	if c.ToYear == 0 {
		c.ToYear = fleet.LastYear
	}
	if c.FromYear > c.ToYear {
		return fmt.Errorf("sim: year range [%d, %d] is not ordered", c.FromYear, c.ToYear)
	}
	if c.FromYear < fleet.FirstYear || c.ToYear > fleet.LastYear {
		return fmt.Errorf("sim: year range [%d, %d] outside study period [%d, %d]",
			c.FromYear, c.ToYear, fleet.FirstYear, fleet.LastYear)
	}
	if c.ElevateYear != 0 || c.ElevateFactor != 0 {
		if c.ElevateFactor <= 1 {
			return fmt.Errorf("sim: ElevateFactor must be > 1 when elevation is set, got %g", c.ElevateFactor)
		}
		if c.ElevateYear < c.FromYear || c.ElevateYear > c.ToYear {
			return fmt.Errorf("sim: ElevateYear %d outside simulated range [%d, %d]",
				c.ElevateYear, c.FromYear, c.ToYear)
		}
	}
	c.Observe = c.Observed()
	c.Metrics, c.Trace, c.Health, c.Logger = nil, nil, nil, nil
	return nil
}

// IntraResult carries the generated dataset and its analysis handles.
type IntraResult struct {
	// Store is the generated SEV dataset.
	Store *sev.Store
	// Fleet is the population model the dataset was generated against.
	Fleet *fleet.Model
	// Analysis answers the §5 questions over the dataset.
	Analysis *core.IntraAnalysis
	// RemediationStats is the Table 1 data accumulated by the automated
	// repair engine, keyed by device type.
	RemediationStats map[topology.DeviceType]remediation.TypeStats
	// Faults and Incidents count generated device faults and the subset
	// that escalated into SEVs.
	Faults, Incidents int
}

// IntraDC runs the intra-data-center simulation and returns the dataset
// with analysis attached.
func IntraDC(cfg IntraConfig) (*IntraResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("dcnr: invalid config: %w", err)
	}
	fl := fleet.New(cfg.Scale)
	driver, err := faults.NewDriver(fl, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("dcnr: building simulation: %w", err)
	}
	if cfg.DisableRemediation {
		driver.Engine.SetEnabled(false)
	}
	driver.Observe(cfg.Observe)
	driver.ElevateYear, driver.ElevateFactor = cfg.ElevateYear, cfg.ElevateFactor
	store, err := driver.Run(cfg.FromYear, cfg.ToYear)
	if err != nil {
		return nil, fmt.Errorf("dcnr: simulating: %w", err)
	}
	return &IntraResult{
		Store:            store,
		Fleet:            fl,
		Analysis:         core.NewIntraAnalysis(store, fl),
		RemediationStats: driver.Engine.Stats(),
		Faults:           driver.Faults(),
		Incidents:        driver.Incidents(),
	}, nil
}

// BackboneResult carries the generated backbone dataset and its analysis.
type BackboneResult struct {
	// Topology is the generated backbone inventory.
	Topology *backbone.Topology
	// Notices is the full vendor notification stream, time-ordered.
	Notices []tickets.Notice
	// Downtimes are the link downtime intervals the collector
	// reconstructed from the notices.
	Downtimes []tickets.Downtime
	// Analysis answers the §6 questions over the reconstructed intervals.
	Analysis *core.InterAnalysis
}

// healthEdgeEvalPeriod is the sim-hour cadence at which Backbone replays
// the observation window into an attached health engine: daily, so the
// edge-availability rule's for-duration semantics match the intra-DC
// plane's.
const healthEdgeEvalPeriod = 24.0

// Backbone generates a backbone per cfg, simulates its failure processes
// over the observation window, and round-trips the repair tickets through
// the generation→parse→pair pipeline, exactly as the study's data flowed
// (§4.3.2).
func Backbone(cfg backbone.Config) (*BackboneResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("dcnr: invalid config: %w", err)
	}
	topo, err := backbone.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("dcnr: building backbone: %w", err)
	}
	downs, err := topo.Simulate(cfg)
	if err != nil {
		return nil, fmt.Errorf("dcnr: simulating backbone: %w", err)
	}
	notices := tickets.Generate(topo, downs)
	coll := tickets.NewCollector()
	// Validate normalized Months, so the window is exactly the simulated
	// one.
	coll.WindowHours = cfg.WindowHours()
	for _, n := range notices {
		// Round-trip through the wire format: what the analysis sees is
		// what a parser recovered, not the generator's structs.
		parsed, err := tickets.Parse(n.Format())
		if err != nil {
			return nil, fmt.Errorf("dcnr: ticket round trip: %w", err)
		}
		if err := coll.Ingest(parsed); err != nil {
			return nil, fmt.Errorf("dcnr: collecting tickets: %w", err)
		}
	}
	dts := coll.Downtimes()
	if eng := cfg.Observed().Health; eng != nil {
		// Feed the reconstructed intervals to the health engine and
		// evaluate over the window, so edge-availability rules see the
		// same data the §6 analysis does.
		for _, dt := range dts {
			eng.RecordEdgeDown(dt.Start, dt.End)
		}
		for t := healthEdgeEvalPeriod; t <= coll.WindowHours; t += healthEdgeEvalPeriod {
			eng.Evaluate(t)
		}
	}
	analysis, err := core.NewInterAnalysis(topo, dts, coll.WindowHours)
	if err != nil {
		return nil, fmt.Errorf("dcnr: analyzing backbone: %w", err)
	}
	return &BackboneResult{
		Topology:  topo,
		Notices:   notices,
		Downtimes: dts,
		Analysis:  analysis,
	}, nil
}
