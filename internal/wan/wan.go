// Package wan models the cross-data-center backbone of §3.2: regions
// interconnected by optical capacity that is "partitioned in the optical
// layer in four planes where each plane has one backbone router per data
// center", with inter data center traffic "managed by software systems
// where centralized traffic engineering is employed".
//
// The traffic engineer spreads each region-pair demand across the up
// links of the four planes; when fiber cuts remove direct capacity it
// reroutes overflow through intermediate regions — the paper's "more
// common result of fiber cuts [is] the loss of capacity ... we have to
// reroute the traffic using other available links, which could increase
// end-to-end latency". Only when every path is exhausted does traffic
// drop, which is why the paper reports no catastrophic partitions.
package wan

import (
	"errors"
	"fmt"
	"sort"
)

// DefaultPlanes is the optical-plane count §3.2 reports.
const DefaultPlanes = 4

// Config sizes a backbone.
type Config struct {
	// Regions are the data center regions, at least two.
	Regions []string
	// Planes is the optical plane count. Defaults to 4.
	Planes int
	// LinkGbps is the capacity of one region-pair link within one plane.
	// Defaults to 400.
	LinkGbps float64
}

// linkKey identifies one plane's link between a region pair (unordered).
type linkKey struct {
	a, b  string
	plane int
}

func newLinkKey(a, b string, plane int) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a: a, b: b, plane: plane}
}

// Backbone is the engineered WAN.
type Backbone struct {
	regions  []string
	planes   int
	linkGbps float64
	down     map[linkKey]bool
}

// New validates cfg and returns a fully-up Backbone.
func New(cfg Config) (*Backbone, error) {
	if len(cfg.Regions) < 2 {
		return nil, errors.New("wan: need at least two regions")
	}
	seen := map[string]bool{}
	for _, r := range cfg.Regions {
		if r == "" || seen[r] {
			return nil, fmt.Errorf("wan: empty or duplicate region %q", r)
		}
		seen[r] = true
	}
	if cfg.Planes == 0 {
		cfg.Planes = DefaultPlanes
	}
	if cfg.Planes < 1 {
		return nil, errors.New("wan: need at least one plane")
	}
	if cfg.LinkGbps == 0 {
		cfg.LinkGbps = 400
	}
	if cfg.LinkGbps <= 0 {
		return nil, errors.New("wan: non-positive link capacity")
	}
	regions := append([]string(nil), cfg.Regions...)
	sort.Strings(regions)
	return &Backbone{
		regions:  regions,
		planes:   cfg.Planes,
		linkGbps: cfg.LinkGbps,
		down:     map[linkKey]bool{},
	}, nil
}

// Regions returns the region names, sorted.
func (b *Backbone) Regions() []string { return append([]string(nil), b.regions...) }

// Planes returns the optical plane count.
func (b *Backbone) Planes() int { return b.planes }

func (b *Backbone) validRegion(r string) bool {
	i := sort.SearchStrings(b.regions, r)
	return i < len(b.regions) && b.regions[i] == r
}

// SetLinkDown marks one plane's link between two regions down (a fiber
// cut) or up (repaired).
func (b *Backbone) SetLinkDown(a, r string, plane int, isDown bool) error {
	if !b.validRegion(a) || !b.validRegion(r) || a == r {
		return fmt.Errorf("wan: invalid region pair %q-%q", a, r)
	}
	if plane < 0 || plane >= b.planes {
		return fmt.Errorf("wan: plane %d outside [0, %d)", plane, b.planes)
	}
	key := newLinkKey(a, r, plane)
	if isDown {
		b.down[key] = true
	} else {
		delete(b.down, key)
	}
	return nil
}

// UpPlanes returns how many planes still connect the region pair directly.
func (b *Backbone) UpPlanes(a, r string) int {
	n := 0
	for p := 0; p < b.planes; p++ {
		if !b.down[newLinkKey(a, r, p)] {
			n++
		}
	}
	return n
}

// Demand is a region-pair traffic demand in Gb/s.
type Demand struct {
	From, To string
	Gbps     float64
}

// FlowResult records how one demand was carried.
type FlowResult struct {
	Demand Demand
	// DirectGbps went over surviving direct links.
	DirectGbps float64
	// ReroutedGbps took a two-hop detour through Via.
	ReroutedGbps float64
	// Via is the intermediate region used for rerouting ("" if none).
	Via string
	// DroppedGbps found no capacity at all.
	DroppedGbps float64
}

// Delivered returns the volume that arrived (directly or rerouted).
func (f FlowResult) Delivered() float64 { return f.DirectGbps + f.ReroutedGbps }

// Report is the traffic-engineering outcome for a demand set.
type Report struct {
	Flows []FlowResult
	// Utilization maps "regionA-regionB/planeN" to link utilization.
	Utilization map[string]float64
	// TotalGbps, ReroutedGbps, DroppedGbps aggregate the flows.
	TotalGbps, ReroutedGbps, DroppedGbps float64
	// MeanPathHops is the delivered-volume-weighted mean hop count: 1.0
	// when everything goes direct, approaching 2.0 as rerouting grows —
	// the latency proxy for §3.2's "could increase end-to-end latency".
	MeanPathHops float64
}

// Engineer routes demands across the planes: direct links first (splitting
// over surviving planes), then two-hop detours through the intermediate
// region with the most spare capacity, then drop. Capacity is consumed
// demand by demand in input order — the deterministic greedy the central
// controller applies.
func (b *Backbone) Engineer(demands []Demand) (Report, error) {
	residual := map[linkKey]float64{}
	for i, a := range b.regions {
		for _, r := range b.regions[i+1:] {
			for p := 0; p < b.planes; p++ {
				key := newLinkKey(a, r, p)
				if !b.down[key] {
					residual[key] = b.linkGbps
				}
			}
		}
	}

	rep := Report{Utilization: map[string]float64{}}
	var hopVolume, deliveredVolume float64
	for _, dm := range demands {
		if !b.validRegion(dm.From) || !b.validRegion(dm.To) || dm.From == dm.To {
			return Report{}, fmt.Errorf("wan: invalid demand %+v", dm)
		}
		if dm.Gbps < 0 {
			return Report{}, fmt.Errorf("wan: negative demand %+v", dm)
		}
		flow := FlowResult{Demand: dm}
		remaining := dm.Gbps

		// Direct: drain surviving planes in order.
		flow.DirectGbps = b.takePair(residual, dm.From, dm.To, remaining)
		remaining -= flow.DirectGbps

		// Reroute: pick the intermediate with the most usable two-hop
		// capacity; a detour consumes capacity on both hops.
		if remaining > 1e-12 {
			via, avail := b.bestDetour(residual, dm.From, dm.To)
			if via != "" && avail > 0 {
				take := remaining
				if take > avail {
					take = avail
				}
				got1 := b.takePair(residual, dm.From, via, take)
				// take ≤ min(leg1, leg2), so the second hop matches the
				// first; count the min defensively anyway.
				got2 := b.takePair(residual, via, dm.To, got1)
				flow.ReroutedGbps = got2
				flow.Via = via
				remaining -= got2
			}
		}
		if remaining > 1e-12 {
			flow.DroppedGbps = remaining
		}

		rep.Flows = append(rep.Flows, flow)
		rep.TotalGbps += dm.Gbps
		rep.ReroutedGbps += flow.ReroutedGbps
		rep.DroppedGbps += flow.DroppedGbps
		hopVolume += flow.DirectGbps + 2*flow.ReroutedGbps
		deliveredVolume += flow.Delivered()
	}
	if deliveredVolume > 0 {
		rep.MeanPathHops = hopVolume / deliveredVolume
	}
	for i, a := range b.regions {
		for _, r := range b.regions[i+1:] {
			for p := 0; p < b.planes; p++ {
				key := newLinkKey(a, r, p)
				if b.down[key] {
					continue
				}
				used := b.linkGbps - residual[key]
				rep.Utilization[fmt.Sprintf("%s-%s/plane%d", key.a, key.b, p)] = used / b.linkGbps
			}
		}
	}
	return rep, nil
}

// takePair drains up to want Gb/s from the pair's planes (in plane order)
// and returns how much it got.
func (b *Backbone) takePair(residual map[linkKey]float64, a, r string, want float64) float64 {
	got := 0.0
	for p := 0; p < b.planes && want-got > 1e-12; p++ {
		key := newLinkKey(a, r, p)
		avail := residual[key]
		if avail <= 0 {
			continue
		}
		take := want - got
		if take > avail {
			take = avail
		}
		residual[key] -= take
		got += take
	}
	return got
}

// pairCapacity sums the pair's residual across planes.
func (b *Backbone) pairCapacity(residual map[linkKey]float64, a, r string) float64 {
	total := 0.0
	for p := 0; p < b.planes; p++ {
		total += residual[newLinkKey(a, r, p)]
	}
	return total
}

// bestDetour returns the intermediate region with the largest usable
// two-hop capacity (the min of its two legs), ties broken by name.
func (b *Backbone) bestDetour(residual map[linkKey]float64, from, to string) (string, float64) {
	best, bestAvail := "", 0.0
	for _, via := range b.regions {
		if via == from || via == to {
			continue
		}
		leg1 := b.pairCapacity(residual, from, via)
		leg2 := b.pairCapacity(residual, via, to)
		avail := leg1
		if leg2 < avail {
			avail = leg2
		}
		if avail > bestAvail {
			best, bestAvail = via, avail
		}
	}
	return best, bestAvail
}
