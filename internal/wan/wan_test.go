package wan

import (
	"math"
	"testing"
	"testing/quick"
)

func testBackbone(t *testing.T) *Backbone {
	t.Helper()
	b, err := New(Config{Regions: []string{"east", "west", "central"}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{},
		{Regions: []string{"only"}},
		{Regions: []string{"a", "a"}},
		{Regions: []string{"a", ""}},
		{Regions: []string{"a", "b"}, Planes: -1},
		{Regions: []string{"a", "b"}, LinkGbps: -5},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestDefaults(t *testing.T) {
	b := testBackbone(t)
	if b.Planes() != DefaultPlanes {
		t.Errorf("planes = %d", b.Planes())
	}
	if got := b.UpPlanes("east", "west"); got != 4 {
		t.Errorf("up planes = %d", got)
	}
	if len(b.Regions()) != 3 {
		t.Errorf("regions = %v", b.Regions())
	}
}

func TestSetLinkDownValidation(t *testing.T) {
	b := testBackbone(t)
	if err := b.SetLinkDown("east", "nowhere", 0, true); err == nil {
		t.Error("unknown region accepted")
	}
	if err := b.SetLinkDown("east", "east", 0, true); err == nil {
		t.Error("self link accepted")
	}
	if err := b.SetLinkDown("east", "west", 9, true); err == nil {
		t.Error("bad plane accepted")
	}
	if err := b.SetLinkDown("east", "west", 1, true); err != nil {
		t.Fatal(err)
	}
	if got := b.UpPlanes("east", "west"); got != 3 {
		t.Errorf("up planes after cut = %d", got)
	}
	// Symmetric: the same link seen from the other side.
	if got := b.UpPlanes("west", "east"); got != 3 {
		t.Errorf("up planes asymmetric: %d", got)
	}
	if err := b.SetLinkDown("west", "east", 1, false); err != nil {
		t.Fatal(err)
	}
	if got := b.UpPlanes("east", "west"); got != 4 {
		t.Errorf("repair did not restore: %d", got)
	}
}

func TestEngineerHealthyDirect(t *testing.T) {
	b := testBackbone(t)
	rep, err := b.Engineer([]Demand{{From: "east", To: "west", Gbps: 600}})
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Flows[0]
	if f.DirectGbps != 600 || f.ReroutedGbps != 0 || f.DroppedGbps != 0 {
		t.Errorf("flow = %+v", f)
	}
	if rep.MeanPathHops != 1 {
		t.Errorf("hops = %v, want 1 (all direct)", rep.MeanPathHops)
	}
	// 600 over planes of 400: plane0 full, plane1 at 50%.
	if u := rep.Utilization["east-west/plane0"]; u != 1 {
		t.Errorf("plane0 util = %v", u)
	}
	if u := rep.Utilization["east-west/plane1"]; u != 0.5 {
		t.Errorf("plane1 util = %v", u)
	}
}

func TestEngineerValidation(t *testing.T) {
	b := testBackbone(t)
	bad := [][]Demand{
		{{From: "east", To: "nowhere", Gbps: 1}},
		{{From: "east", To: "east", Gbps: 1}},
		{{From: "east", To: "west", Gbps: -1}},
	}
	for i, demands := range bad {
		if _, err := b.Engineer(demands); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFiberCutsForceRerouting(t *testing.T) {
	// §3.2: fiber cuts cost capacity; traffic reroutes over other links
	// at a latency cost.
	b := testBackbone(t)
	// Cut 3 of 4 east-west planes: direct capacity drops to 400.
	for p := 0; p < 3; p++ {
		if err := b.SetLinkDown("east", "west", p, true); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := b.Engineer([]Demand{{From: "east", To: "west", Gbps: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Flows[0]
	if f.DirectGbps != 400 {
		t.Errorf("direct = %v, want the surviving plane's 400", f.DirectGbps)
	}
	if f.ReroutedGbps != 600 || f.Via != "central" {
		t.Errorf("rerouted = %v via %q, want 600 via central", f.ReroutedGbps, f.Via)
	}
	if f.DroppedGbps != 0 {
		t.Errorf("dropped = %v; path diversity should carry everything", f.DroppedGbps)
	}
	// Latency proxy: rerouted volume doubles its hops.
	wantHops := (400*1 + 600*2) / 1000.0
	if math.Abs(rep.MeanPathHops-wantHops) > 1e-9 {
		t.Errorf("hops = %v, want %v", rep.MeanPathHops, wantHops)
	}
}

func TestTotalSeveranceDropsTraffic(t *testing.T) {
	// Only when *every* path is gone does traffic drop — the partition
	// case Facebook's planning avoids.
	b := testBackbone(t)
	for p := 0; p < 4; p++ {
		if err := b.SetLinkDown("east", "west", p, true); err != nil {
			t.Fatal(err)
		}
		if err := b.SetLinkDown("east", "central", p, true); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := b.Engineer([]Demand{{From: "east", To: "west", Gbps: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flows[0].DroppedGbps != 100 {
		t.Errorf("dropped = %v, want all 100 (east fully severed)", rep.Flows[0].DroppedGbps)
	}
}

func TestDetourCapacityIsMinOfLegs(t *testing.T) {
	b := testBackbone(t)
	// east-west fully cut; east-central down to one plane (400);
	// central-west full (1600). Detour capacity = min = 400.
	for p := 0; p < 4; p++ {
		if err := b.SetLinkDown("east", "west", p, true); err != nil {
			t.Fatal(err)
		}
	}
	for p := 1; p < 4; p++ {
		if err := b.SetLinkDown("east", "central", p, true); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := b.Engineer([]Demand{{From: "east", To: "west", Gbps: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Flows[0]
	if f.ReroutedGbps != 400 || f.DroppedGbps != 600 {
		t.Errorf("flow = %+v, want 400 rerouted / 600 dropped", f)
	}
}

func TestEngineerConservesVolume(t *testing.T) {
	f := func(cutMask uint16, d1, d2 uint8) bool {
		b, err := New(Config{Regions: []string{"a", "b", "c", "d"}})
		if err != nil {
			return false
		}
		// Apply up to 16 pseudo-random cuts between a-b and a-c.
		for p := 0; p < 4; p++ {
			if cutMask&(1<<p) != 0 {
				b.SetLinkDown("a", "b", p, true)
			}
			if cutMask&(1<<(4+p)) != 0 {
				b.SetLinkDown("a", "c", p, true)
			}
		}
		demands := []Demand{
			{From: "a", To: "b", Gbps: float64(d1) * 10},
			{From: "a", To: "c", Gbps: float64(d2) * 10},
		}
		rep, err := b.Engineer(demands)
		if err != nil {
			return false
		}
		for _, fl := range rep.Flows {
			sum := fl.DirectGbps + fl.ReroutedGbps + fl.DroppedGbps
			if math.Abs(sum-fl.Demand.Gbps) > 1e-6 {
				return false
			}
		}
		for _, u := range rep.Utilization {
			if u < -1e-9 || u > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineerEmptyDemands(t *testing.T) {
	b := testBackbone(t)
	rep, err := b.Engineer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalGbps != 0 || rep.MeanPathHops != 0 {
		t.Errorf("empty report = %+v", rep)
	}
}

func BenchmarkEngineer(b *testing.B) {
	bb, err := New(Config{Regions: []string{"r1", "r2", "r3", "r4", "r5", "r6"}})
	if err != nil {
		b.Fatal(err)
	}
	var demands []Demand
	regions := bb.Regions()
	for i, a := range regions {
		for _, r := range regions[i+1:] {
			demands = append(demands, Demand{From: a, To: r, Gbps: 300})
		}
	}
	bb.SetLinkDown("r1", "r2", 0, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bb.Engineer(demands); err != nil {
			b.Fatal(err)
		}
	}
}
