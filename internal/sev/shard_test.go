package sev

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"dcnr/internal/topology"
)

// shardReports builds n valid reports spread across years, devices,
// severities, and causes, with ID 0 (store-assigned).
func shardReports(n, base int) []Report {
	devices := []string{
		"rsw001.cl001.dc1.ra", "csw001.cl001.dc1.ra", "csa001.dc1.ra",
		"esw001.cl001.dc1.ra", "ssw001.cl001.dc1.ra",
	}
	out := make([]Report, n)
	for i := range out {
		k := base + i
		out[i] = Report{
			Severity:   Severity(1 + k%3),
			Device:     devices[k%len(devices)],
			Start:      float64((k * 37) % (n * 5)),
			Duration:   1,
			Resolution: float64(2 + k%7),
			Year:       2011 + k%7,
			RootCauses: []RootCause{RootCause(k % numRootCauses)},
		}
	}
	return out
}

// TestAddAllMatchesAdd pins the batched ingest path against the
// single-report path: same IDs, same report order, same index behavior
// (window queries exercise the merged start-time index).
func TestAddAllMatchesAdd(t *testing.T) {
	reports := shardReports(200, 0)
	one := NewStore()
	for _, r := range reports {
		if _, err := one.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	batch := NewStore()
	// Split across several batches so the byStart merge path runs with a
	// non-empty existing run.
	for i := 0; i < len(reports); i += 64 {
		end := min(i+64, len(reports))
		if _, err := batch.AddAll(reports[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := fmt.Sprint(batch.All()), fmt.Sprint(one.All()); got != want {
		t.Fatal("AddAll and Add produced different stores")
	}
	for _, win := range [][2]float64{{0, 100}, {37, 612}, {500, 1000}} {
		got := batch.Query().Since(win[0]).Until(win[1]).Count()
		want := one.Query().Since(win[0]).Until(win[1]).Count()
		if got != want {
			t.Errorf("window [%g,%g): AddAll store counts %d, Add store %d", win[0], win[1], got, want)
		}
	}
	if got, want := fmt.Sprint(batch.Query().Starts()), fmt.Sprint(one.Query().Starts()); got != want {
		t.Error("Starts diverged between AddAll and Add stores")
	}
	if g := batch.Generation(); g != 4 {
		t.Errorf("generation after 4 batches = %d, want 4", g)
	}
}

// TestShardedMatchesStore cross-checks every fan-out aggregation against
// a single Store loaded with the same reports.
func TestShardedMatchesStore(t *testing.T) {
	reports := shardReports(500, 0)
	ref := NewStore()
	if _, err := ref.AddAll(reports); err != nil {
		t.Fatal(err)
	}
	sh := NewSharded(4)
	defer sh.Close()
	if _, err := sh.AddAll(reports); err != nil {
		t.Fatal(err)
	}
	if sh.Len() != ref.Len() {
		t.Fatalf("sharded Len = %d, store Len = %d", sh.Len(), ref.Len())
	}

	refQ := ref.Query().Year(2013)
	shQ := sh.Query().Year(2013)
	if got, want := shQ.Count(), refQ.Count(); got != want {
		t.Errorf("Year(2013).Count: sharded %d, store %d", got, want)
	}
	if got, want := fmt.Sprint(shQ.CountBySeverity()), fmt.Sprint(refQ.CountBySeverity()); got != want {
		t.Errorf("CountBySeverity: sharded %s, store %s", got, want)
	}
	if got, want := fmt.Sprint(sh.Query().CountByYear()), fmt.Sprint(ref.Query().CountByYear()); got != want {
		t.Errorf("CountByYear: sharded %s, store %s", got, want)
	}
	if got, want := fmt.Sprint(sh.Query().CountByDeviceType()), fmt.Sprint(ref.Query().CountByDeviceType()); got != want {
		t.Errorf("CountByDeviceType: sharded %s, store %s", got, want)
	}
	if got, want := fmt.Sprint(sh.Query().CountByRootCause()), fmt.Sprint(ref.Query().CountByRootCause()); got != want {
		t.Errorf("CountByRootCause: sharded %s, store %s", got, want)
	}
	if got, want := fmt.Sprint(sh.Query().CountByYearSeverity()), fmt.Sprint(ref.Query().CountByYearSeverity()); got != want {
		t.Errorf("CountByYearSeverity: sharded %s, store %s", got, want)
	}
	if got, want := fmt.Sprint(sh.Query().CountByYearDesign()), fmt.Sprint(ref.Query().CountByYearDesign()); got != want {
		t.Errorf("CountByYearDesign: sharded %s, store %s", got, want)
	}
	// Sample aggregations: compare as multisets via sorted render.
	if got, want := fmt.Sprint(sh.Query().Starts()), fmt.Sprint(ref.Query().Starts()); got != want {
		t.Errorf("Starts: sharded %s, store %s", got, want)
	}
	refRes := refQ.Resolutions()
	shRes := shQ.Resolutions()
	if len(refRes) != len(shRes) {
		t.Errorf("Resolutions length: sharded %d, store %d", len(shRes), len(refRes))
	}
	// Window queries exercise the merged byStart index on every shard.
	if got, want := sh.Query().Since(50).Until(500).Count(), ref.Query().Since(50).Until(500).Count(); got != want {
		t.Errorf("window Count: sharded %d, store %d", got, want)
	}
}

// TestShardedAddAllIDs pins the global ID contract: assigned IDs are
// unique across shards, explicit IDs are preserved, and duplicates are
// rejected without partial ingest.
func TestShardedAddAllIDs(t *testing.T) {
	sh := NewSharded(3)
	defer sh.Close()
	ids, err := sh.AddAll(shardReports(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if id <= 0 || seen[id] {
			t.Fatalf("assigned IDs not unique/positive: %v", ids)
		}
		seen[id] = true
	}
	explicit := shardReports(2, 20)
	explicit[0].ID = 100
	explicit[1].ID = 101
	if _, err := sh.AddAll(explicit); err != nil {
		t.Fatal(err)
	}
	if r, err := sh.Get(100); err != nil || r.ID != 100 {
		t.Errorf("Get(100) = %+v, %v", r, err)
	}
	dup := shardReports(1, 30)
	dup[0].ID = 100
	_, err = sh.AddAll(dup)
	if err == nil || !strings.Contains(err.Error(), "duplicate report ID 100") {
		t.Fatalf("duplicate explicit ID not rejected: %v", err)
	}
	if n := sh.Len(); n != 12 {
		t.Errorf("Len after rejected batch = %d, want 12", n)
	}
	// Fresh assignments dodge the explicit range.
	more, err := sh.AddAll(shardReports(3, 40))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range more {
		if id == 100 || id == 101 {
			t.Errorf("fresh ID collided with explicit: %v", more)
		}
	}
}

// TestShardedGeneration pins the cache-invalidation contract: every
// successful ingest bumps the generation exactly once; a rejected batch
// does not.
func TestShardedGeneration(t *testing.T) {
	sh := NewSharded(2)
	defer sh.Close()
	if g := sh.Generation(); g != 0 {
		t.Fatalf("fresh generation = %d", g)
	}
	if _, err := sh.AddAll(shardReports(4, 0)); err != nil {
		t.Fatal(err)
	}
	if g := sh.Generation(); g != 1 {
		t.Fatalf("generation after ingest = %d, want 1", g)
	}
	bad := shardReports(1, 5)
	bad[0].Device = ""
	if _, err := sh.AddAll(bad); err == nil {
		t.Fatal("invalid report accepted")
	}
	if g := sh.Generation(); g != 1 {
		t.Errorf("generation bumped by rejected batch: %d", g)
	}
}

// TestShardedIngestWhileQuerying is the -race test from the issue:
// concurrent AddAll batches and fan-out queries on every aggregation
// must be data-race free and observe consistent (monotonic) counts.
func TestShardedIngestWhileQuerying(t *testing.T) {
	sh := NewSharded(4)
	defer sh.Close()
	if _, err := sh.AddAll(shardReports(100, 0)); err != nil {
		t.Fatal(err)
	}
	const (
		writers = 2
		batches = 10
		readers = 4
	)
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for b := 0; b < batches; b++ {
				if _, err := sh.AddAll(shardReports(20, 1000+w*10000+b*100)); err != nil {
					t.Errorf("writer %d batch %d: %v", w, b, err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := sh.Query().Count()
				if n < last {
					t.Errorf("reader %d: count went backwards (%d -> %d)", r, last, n)
					return
				}
				last = n
				switch r % 4 {
				case 0:
					sh.Query().Year(2013).CountBySeverity()
				case 1:
					sh.Query().DeviceType(topology.RSW).Count()
				case 2:
					sh.Query().Since(10).Until(400).Count()
				case 3:
					sh.Query().ResolutionsByYear()
				}
			}
		}(r)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if got, want := sh.Query().Count(), 100+writers*batches*20; got != want {
		t.Errorf("final count = %d, want %d", got, want)
	}
}
