// Package sev implements Service-level EVents (SEVs), the incident reports
// at the center of the study's intra-data-center methodology (§4.2).
//
// A SEV documents one production incident: the offending network device,
// the root cause(s) chosen by the authoring engineer, the severity level
// (SEV1 highest … SEV3 lowest), and the incident's timing. Reports are held
// in a Store and analyzed through a typed query API that stands in for the
// SQL queries the paper ran against its MySQL SEV database.
package sev

import (
	"errors"
	"fmt"

	"dcnr/internal/topology"
)

// Severity is a SEV level. Lower numeric value = higher severity, matching
// the paper's naming (SEV1 is the highest severity).
type Severity int

const (
	// Sev1 is the highest severity: entire product or data center outage
	// (Table 3).
	Sev1 Severity = 1
	// Sev2 is a service outage affecting a particular feature or a
	// regional network impairment.
	Sev2 Severity = 2
	// Sev3 is the lowest severity: redundant or contained failures with
	// minimal customer impact.
	Sev3 Severity = 3
)

// Severities lists the levels from most to least severe.
var Severities = []Severity{Sev1, Sev2, Sev3}

// String returns "SEV1".."SEV3".
func (s Severity) String() string {
	if s < Sev1 || s > Sev3 {
		return fmt.Sprintf("Severity(%d)", int(s))
	}
	return fmt.Sprintf("SEV%d", int(s))
}

// Valid reports whether s is a defined severity level.
func (s Severity) Valid() bool { return s >= Sev1 && s <= Sev3 }

// RootCause is a category from the paper's SEV authoring workflow
// (Table 2). A SEV may carry multiple root causes; a SEV with none is
// counted as Undetermined.
type RootCause int

const (
	// Undetermined marks an inconclusive root cause.
	Undetermined RootCause = iota
	// Maintenance covers routine-maintenance failures such as botched
	// software or firmware upgrades.
	Maintenance
	// Hardware covers failing devices: faulty memory, processors, ports.
	Hardware
	// Configuration covers incorrect or unintended configurations.
	Configuration
	// Bug covers logical errors in device software or firmware.
	Bug
	// Accident covers unintended actions, e.g. power cycling the wrong
	// device.
	Accident
	// Capacity covers high load due to insufficient capacity planning.
	Capacity

	numRootCauses = int(Capacity) + 1
)

// RootCauses lists the categories in the paper's Table 2 order.
var RootCauses = []RootCause{Maintenance, Hardware, Configuration, Bug, Accident, Capacity, Undetermined}

var rootCauseNames = [numRootCauses]string{
	Undetermined:  "Undetermined",
	Maintenance:   "Maintenance",
	Hardware:      "Hardware",
	Configuration: "Configuration",
	Bug:           "Bug",
	Accident:      "Accidents",
	Capacity:      "Capacity planning",
}

// String returns the category's display name from Table 2.
func (c RootCause) String() string {
	if c < 0 || int(c) >= numRootCauses {
		return fmt.Sprintf("RootCause(%d)", int(c))
	}
	return rootCauseNames[c]
}

// HumanInduced reports whether the category is a human-induced software
// issue; §5.1 observes these occur at nearly double the rate of hardware
// failures.
func (c RootCause) HumanInduced() bool {
	return c == Configuration || c == Bug
}

// Report is one SEV. Times are hours since the simulation epoch
// (Jan 1 of the first study year).
type Report struct {
	// ID is the store-assigned sequence number.
	ID int `json:"id"`
	// Severity is the incident's high-water-mark level; it is never
	// downgraded (§5.3).
	Severity Severity `json:"severity"`
	// Device is the name of the offending network device; its prefix
	// encodes the device type per the naming convention.
	Device string `json:"device"`
	// RootCauses are the categories the authoring engineer selected.
	// Empty means undetermined.
	RootCauses []RootCause `json:"root_causes"`
	// Start is when the root cause manifested, in hours since epoch.
	Start float64 `json:"start"`
	// Duration is the incident duration in hours: root-cause
	// manifestation until the fix landed.
	Duration float64 `json:"duration"`
	// Resolution is the time in hours until engineers closed the SEV,
	// including prevention work; always >= Duration (§5.6).
	Resolution float64 `json:"resolution"`
	// Year is the calendar year the incident started in.
	Year int `json:"year"`
	// Title summarizes the incident.
	Title string `json:"title"`
	// Impact describes the service-level effect (lost capacity, retries,
	// partitioned connectivity, congestion).
	Impact string `json:"impact"`
	// ServicesAffected names the production systems the incident touched.
	ServicesAffected []string `json:"services_affected,omitempty"`
	// Reviewed records whether the report passed the SEV review process.
	Reviewed bool `json:"reviewed"`
	// Reviewer records who signed off during the §4.2 review process.
	Reviewer string `json:"reviewer,omitempty"`
}

// DeviceType parses the offending device's type from its name.
func (r *Report) DeviceType() (topology.DeviceType, error) {
	return topology.ParseDeviceName(r.Device)
}

// Design returns the network design of the offending device, or
// DesignShared when the device name does not parse.
func (r *Report) Design() topology.Design {
	t, err := r.DeviceType()
	if err != nil {
		return topology.DesignShared
	}
	return t.Design()
}

// EffectiveRootCauses returns the report's root causes, or
// [Undetermined] when the engineer recorded none.
func (r *Report) EffectiveRootCauses() []RootCause {
	if len(r.RootCauses) == 0 {
		return []RootCause{Undetermined}
	}
	return r.RootCauses
}

// Validate checks report invariants. Store.Add rejects invalid reports.
func (r *Report) Validate() error {
	if !r.Severity.Valid() {
		return fmt.Errorf("sev: invalid severity %d", int(r.Severity))
	}
	if r.Device == "" {
		return errors.New("sev: missing device")
	}
	if _, err := topology.ParseDeviceName(r.Device); err != nil {
		return fmt.Errorf("sev: %w", err)
	}
	if r.Duration < 0 || r.Resolution < 0 {
		return errors.New("sev: negative duration")
	}
	if r.Resolution < r.Duration {
		return errors.New("sev: resolution shorter than duration")
	}
	if r.Start < 0 {
		return errors.New("sev: negative start time")
	}
	for _, c := range r.RootCauses {
		if c < 0 || int(c) >= numRootCauses {
			return fmt.Errorf("sev: invalid root cause %d", int(c))
		}
	}
	return nil
}
