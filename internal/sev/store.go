package sev

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"dcnr/internal/obs"
	"dcnr/internal/topology"
)

// Store holds SEV reports and answers the aggregate queries the study runs
// against its SEV database. It is safe for concurrent use.
//
// Alongside the report slice the store maintains secondary indexes —
// posting lists of report positions keyed by year, device type, severity,
// network design, and root cause, plus an ID map — so the typed query API
// (query.go) can intersect the smallest applicable lists instead of
// scanning every report. Indexes are updated under the write lock on Add,
// extended once per batch on AddAll, and rebuilt wholesale on ReadJSON.
type Store struct {
	mu      sync.RWMutex
	reports []Report
	nextID  int

	// gen counts dataset mutations (Add, AddAll, ReadJSON). Result caches
	// key on it: a bumped generation invalidates every cached aggregation.
	gen atomic.Uint64

	// byID maps report ID → position in reports.
	byID map[int]int
	// types caches the parsed device type per position so queries never
	// re-parse device names.
	types []topology.DeviceType
	// Posting lists: positions in ascending order, one list per key value.
	byYear   map[int][]int
	byType   map[topology.DeviceType][]int
	bySev    map[Severity][]int
	byDesign map[topology.Design][]int
	byCause  map[RootCause][]int
	// byStart holds every position ordered by report start time (ties in
	// position order), so pure Since/Until windows binary-search a
	// contiguous range instead of scanning the whole store.
	byStart []int
	// provenance is the causal-chain side store keyed by report ID,
	// attached by AttachJournal; it is deliberately not part of the
	// report serialization (WriteJSON stays byte-stable).
	provenance map[int]Provenance

	// Telemetry, attached by Instrument; nil fields are no-ops.
	mIndexed    *obs.Counter
	mScanned    *obs.Counter
	hPostings   *obs.Histogram
	hCandidates *obs.Histogram
}

// Instrument attaches telemetry to the store's query engine. Metrics
// registered on reg: sev_queries_indexed_total and sev_queries_scan_total
// (counters — a rising scan count flags queries with no predicate at all,
// the only shape left that must touch every report), sev_posting_list_size
// (histogram of each selected posting list's length), and
// sev_query_candidates (histogram of post-intersection candidate counts).
// reg may be nil.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg == nil {
		return
	}
	s.mIndexed = reg.Counter("sev_queries_indexed_total")
	s.mScanned = reg.Counter("sev_queries_scan_total")
	s.hPostings = reg.Histogram("sev_posting_list_size",
		[]float64{1, 10, 100, 1000, 10000, 100000})
	s.hCandidates = reg.Histogram("sev_query_candidates",
		[]float64{1, 10, 100, 1000, 10000, 100000})
}

// NewStore returns an empty Store.
func NewStore() *Store {
	s := &Store{nextID: 1}
	s.resetIndexLocked(0)
	return s
}

// resetIndexLocked reinitializes every secondary index. Caller holds mu.
func (s *Store) resetIndexLocked(capacity int) {
	s.byID = make(map[int]int, capacity)
	s.types = make([]topology.DeviceType, 0, capacity)
	s.byYear = make(map[int][]int)
	s.byType = make(map[topology.DeviceType][]int)
	s.bySev = make(map[Severity][]int)
	s.byDesign = make(map[topology.Design][]int)
	s.byCause = make(map[RootCause][]int)
	s.byStart = make([]int, 0, capacity)
}

// indexPostingsLocked appends every secondary-index entry except the
// start-time index for the report at position pos. The report must
// already be validated (its device name parses). Caller holds mu.
func (s *Store) indexPostingsLocked(pos int) {
	r := &s.reports[pos]
	t, err := topology.ParseDeviceName(r.Device)
	if err != nil {
		// Unreachable for validated reports; keep types aligned anyway.
		t = topology.DeviceType(-1)
	}
	s.types = append(s.types, t)
	s.byID[r.ID] = pos
	s.byYear[r.Year] = append(s.byYear[r.Year], pos)
	s.bySev[r.Severity] = append(s.bySev[r.Severity], pos)
	if t >= 0 {
		s.byType[t] = append(s.byType[t], pos)
		s.byDesign[t.Design()] = append(s.byDesign[t.Design()], pos)
	}
	// A report may list the same cause twice; the posting list stays
	// deduplicated so RootCause(c).Count() counts the report once (the
	// multi-counting of CountByRootCause happens over EffectiveRootCauses).
	for _, c := range r.EffectiveRootCauses() {
		if list := s.byCause[c]; len(list) > 0 && list[len(list)-1] == pos {
			continue
		}
		s.byCause[c] = append(s.byCause[c], pos)
	}
}

// indexLocked appends index entries for the report at position pos — the
// single-report path Add takes. Caller holds mu.
func (s *Store) indexLocked(pos int) {
	s.indexPostingsLocked(pos)
	r := &s.reports[pos]
	// Sorted insert into the time index. Simulated reports arrive in
	// near-chronological order, so the search usually lands at the end and
	// the copy moves nothing.
	i := sort.Search(len(s.byStart), func(i int) bool {
		return s.reports[s.byStart[i]].Start > r.Start
	})
	s.byStart = append(s.byStart, 0)
	copy(s.byStart[i+1:], s.byStart[i:])
	s.byStart[i] = pos
}

// indexBatchLocked indexes positions [from, len(reports)) in one pass:
// posting lists are appended per report, but the start-time index is
// built by sorting the new positions once and merging them with the
// existing run — O(k log k + n) per batch instead of the O(n·k) the
// per-report sorted insert degrades to on out-of-order input. Caller
// holds mu.
func (s *Store) indexBatchLocked(from int) {
	for pos := from; pos < len(s.reports); pos++ {
		s.indexPostingsLocked(pos)
	}
	added := make([]int, 0, len(s.reports)-from)
	for pos := from; pos < len(s.reports); pos++ {
		added = append(added, pos)
	}
	// Stable by start time: equal starts keep position order, matching the
	// insert-after-equals rule of the single-report path.
	sort.SliceStable(added, func(i, j int) bool {
		return s.reports[added[i]].Start < s.reports[added[j]].Start
	})
	if from == 0 || len(s.byStart) == 0 {
		s.byStart = added
		return
	}
	merged := make([]int, 0, len(s.byStart)+len(added))
	i, j := 0, 0
	for i < len(s.byStart) && j < len(added) {
		// Existing entries win ties: every added position is greater, and
		// the single-report path inserts after equal starts.
		if s.reports[s.byStart[i]].Start <= s.reports[added[j]].Start {
			merged = append(merged, s.byStart[i])
			i++
		} else {
			merged = append(merged, added[j])
			j++
		}
	}
	merged = append(merged, s.byStart[i:]...)
	merged = append(merged, added[j:]...)
	s.byStart = merged
}

// startRangeLocked returns the positions of reports with Start in the
// half-open window [since, until), ordered by start time; a nil bound is
// unbounded on that side. Caller holds mu.
func (s *Store) startRangeLocked(since, until *float64) []int {
	lo := 0
	if since != nil {
		lo = sort.Search(len(s.byStart), func(i int) bool {
			return s.reports[s.byStart[i]].Start >= *since
		})
	}
	hi := len(s.byStart)
	if until != nil {
		hi = sort.Search(len(s.byStart), func(i int) bool {
			return s.reports[s.byStart[i]].Start >= *until
		})
	}
	if hi < lo {
		hi = lo
	}
	return s.byStart[lo:hi]
}

// Add validates r, assigns it an ID, and appends it. It returns the
// assigned ID.
func (s *Store) Add(r Report) (int, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r.ID = s.nextID
	s.nextID++
	s.reports = append(s.reports, r)
	s.indexLocked(len(s.reports) - 1)
	s.gen.Add(1)
	return r.ID, nil
}

// AddAll validates and appends a batch of reports, building the
// secondary indexes once per batch instead of once per report. A report
// with ID 0 is assigned a fresh ID; an explicit ID is preserved and must
// not collide with the store or with the rest of the batch. On any
// validation or duplicate-ID error the store is left unchanged. It
// returns the IDs in input order.
func (s *Store) AddAll(batch []Report) ([]int, error) {
	for i := range batch {
		if err := batch[i].Validate(); err != nil {
			return nil, fmt.Errorf("sev: report %d invalid: %w", batch[i].ID, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Reject every explicit-ID collision before mutating anything.
	seen := make(map[int]bool, len(batch))
	for i := range batch {
		id := batch[i].ID
		if id == 0 {
			continue
		}
		if _, taken := s.byID[id]; taken || seen[id] {
			return nil, fmt.Errorf("sev: duplicate report ID %d in batch", id)
		}
		seen[id] = true
	}
	from := len(s.reports)
	ids := make([]int, len(batch))
	for i := range batch {
		r := batch[i]
		if r.ID == 0 {
			// Dodge explicit IDs later in the batch: nextID always exceeds
			// every ID already stored, but not ones still to be appended.
			for seen[s.nextID] {
				s.nextID++
			}
			r.ID = s.nextID
			s.nextID++
		} else if r.ID >= s.nextID {
			s.nextID = r.ID + 1
		}
		ids[i] = r.ID
		s.reports = append(s.reports, r)
	}
	s.indexBatchLocked(from)
	s.gen.Add(1)
	return ids, nil
}

// Generation returns the dataset generation: a counter bumped by every
// successful Add, AddAll, and ReadJSON. Responses cached against a
// generation are valid exactly while Generation still returns it.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Len returns the number of stored reports.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.reports)
}

// Get returns the report with the given ID.
func (s *Store) Get(id int) (Report, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if pos, ok := s.byID[id]; ok {
		return s.reports[pos], nil
	}
	return Report{}, fmt.Errorf("sev: no report with ID %d", id)
}

// All returns a copy of every report in ID order.
func (s *Store) All() []Report {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Report(nil), s.reports...)
}

// WriteJSON streams the reports to w as a JSON array.
func (s *Store) WriteJSON(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	return enc.Encode(s.reports)
}

// ReadJSON replaces the store's contents with the reports decoded from r.
// Each report is re-validated; IDs are preserved. Reports are sorted into
// ascending ID order regardless of their order in the input, and datasets
// containing duplicate IDs are rejected.
func (s *Store) ReadJSON(r io.Reader) error {
	var reports []Report
	if err := json.NewDecoder(r).Decode(&reports); err != nil {
		return fmt.Errorf("sev: decoding dataset: %w", err)
	}
	maxID := 0
	seen := make(map[int]bool, len(reports))
	for i := range reports {
		if err := reports[i].Validate(); err != nil {
			return fmt.Errorf("sev: report %d invalid: %w", reports[i].ID, err)
		}
		if seen[reports[i].ID] {
			return fmt.Errorf("sev: duplicate report ID %d in dataset", reports[i].ID)
		}
		seen[reports[i].ID] = true
		if reports[i].ID > maxID {
			maxID = reports[i].ID
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reports = reports
	s.nextID = maxID + 1
	s.resetIndexLocked(len(reports))
	// The wholesale form of AddAll's batch path: one index build for the
	// whole dataset instead of a sorted insert per report.
	s.indexBatchLocked(0)
	s.gen.Add(1)
	return nil
}
