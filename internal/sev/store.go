package sev

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"dcnr/internal/topology"
)

// Store holds SEV reports and answers the aggregate queries the study runs
// against its SEV database. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	reports []Report
	nextID  int
}

// NewStore returns an empty Store.
func NewStore() *Store { return &Store{nextID: 1} }

// Add validates r, assigns it an ID, and appends it. It returns the
// assigned ID.
func (s *Store) Add(r Report) (int, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r.ID = s.nextID
	s.nextID++
	s.reports = append(s.reports, r)
	return r.ID, nil
}

// Len returns the number of stored reports.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.reports)
}

// Get returns the report with the given ID.
func (s *Store) Get(id int) (Report, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.reports), func(i int) bool { return s.reports[i].ID >= id })
	if i < len(s.reports) && s.reports[i].ID == id {
		return s.reports[i], nil
	}
	return Report{}, fmt.Errorf("sev: no report with ID %d", id)
}

// All returns a copy of every report in ID order.
func (s *Store) All() []Report {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Report(nil), s.reports...)
}

// WriteJSON streams the reports to w as a JSON array.
func (s *Store) WriteJSON(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	return enc.Encode(s.reports)
}

// ReadJSON replaces the store's contents with the reports decoded from r.
// Each report is re-validated; IDs are preserved.
func (s *Store) ReadJSON(r io.Reader) error {
	var reports []Report
	if err := json.NewDecoder(r).Decode(&reports); err != nil {
		return fmt.Errorf("sev: decoding dataset: %w", err)
	}
	maxID := 0
	for i := range reports {
		if err := reports[i].Validate(); err != nil {
			return fmt.Errorf("sev: report %d invalid: %w", reports[i].ID, err)
		}
		if reports[i].ID > maxID {
			maxID = reports[i].ID
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reports = reports
	s.nextID = maxID + 1
	return nil
}

// Query is a filtered view over a Store's reports. The zero Query matches
// everything; With* methods narrow it. Queries are values: narrowing
// returns a new Query and never mutates the receiver.
type Query struct {
	store        *Store
	year         *int
	deviceType   *topology.DeviceType
	severity     *Severity
	design       *topology.Design
	rootCause    *RootCause
	since, until *float64
}

// Query starts a query over all reports in the store.
func (s *Store) Query() Query { return Query{store: s} }

// Year narrows to incidents that started in the given calendar year.
func (q Query) Year(y int) Query { q.year = &y; return q }

// DeviceType narrows to incidents whose offending device has type t.
func (q Query) DeviceType(t topology.DeviceType) Query { q.deviceType = &t; return q }

// Severity narrows to incidents of the given level.
func (q Query) Severity(v Severity) Query { q.severity = &v; return q }

// Design narrows to incidents on devices of the given network design.
func (q Query) Design(d topology.Design) Query { q.design = &d; return q }

// RootCause narrows to incidents that carry the given root-cause category
// (a multi-cause SEV matches each of its categories, per §5.1's counting
// rule).
func (q Query) RootCause(c RootCause) Query { q.rootCause = &c; return q }

// Since narrows to incidents starting at or after t (hours since epoch).
func (q Query) Since(t float64) Query { q.since = &t; return q }

// Until narrows to incidents starting strictly before t (hours since
// epoch). Since(a).Until(b) selects the half-open window [a, b).
func (q Query) Until(t float64) Query { q.until = &t; return q }

func (q Query) matches(r *Report) bool {
	if q.year != nil && r.Year != *q.year {
		return false
	}
	if q.since != nil && r.Start < *q.since {
		return false
	}
	if q.until != nil && r.Start >= *q.until {
		return false
	}
	if q.severity != nil && r.Severity != *q.severity {
		return false
	}
	if q.deviceType != nil {
		t, err := r.DeviceType()
		if err != nil || t != *q.deviceType {
			return false
		}
	}
	if q.design != nil && r.Design() != *q.design {
		return false
	}
	if q.rootCause != nil {
		found := false
		for _, c := range r.EffectiveRootCauses() {
			if c == *q.rootCause {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Reports returns the matching reports in ID order.
func (q Query) Reports() []Report {
	q.store.mu.RLock()
	defer q.store.mu.RUnlock()
	var out []Report
	for i := range q.store.reports {
		if q.matches(&q.store.reports[i]) {
			out = append(out, q.store.reports[i])
		}
	}
	return out
}

// Count returns the number of matching reports.
func (q Query) Count() int {
	q.store.mu.RLock()
	defer q.store.mu.RUnlock()
	n := 0
	for i := range q.store.reports {
		if q.matches(&q.store.reports[i]) {
			n++
		}
	}
	return n
}

// CountByDeviceType groups matching reports by offending device type.
func (q Query) CountByDeviceType() map[topology.DeviceType]int {
	out := make(map[topology.DeviceType]int)
	for _, r := range q.Reports() {
		if t, err := r.DeviceType(); err == nil {
			out[t]++
		}
	}
	return out
}

// CountBySeverity groups matching reports by severity level.
func (q Query) CountBySeverity() map[Severity]int {
	out := make(map[Severity]int)
	for _, r := range q.Reports() {
		out[r.Severity]++
	}
	return out
}

// CountByYear groups matching reports by start year.
func (q Query) CountByYear() map[int]int {
	out := make(map[int]int)
	for _, r := range q.Reports() {
		out[r.Year]++
	}
	return out
}

// CountByRootCause groups matching reports by root-cause category. A SEV
// with multiple root causes counts toward each (§5.1); one with none counts
// as Undetermined.
func (q Query) CountByRootCause() map[RootCause]int {
	out := make(map[RootCause]int)
	for _, r := range q.Reports() {
		for _, c := range r.EffectiveRootCauses() {
			out[c]++
		}
	}
	return out
}

// Resolutions returns the resolution times (hours) of matching reports.
func (q Query) Resolutions() []float64 {
	var out []float64
	for _, r := range q.Reports() {
		out = append(out, r.Resolution)
	}
	return out
}

// Starts returns the start times (hours since epoch) of matching reports
// in ascending order.
func (q Query) Starts() []float64 {
	var out []float64
	for _, r := range q.Reports() {
		out = append(out, r.Start)
	}
	sort.Float64s(out)
	return out
}
