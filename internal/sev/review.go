package sev

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the review process of §4.2: "Each SEV goes through
// a review process to verify the accuracy and completeness of the report."
// A report is published only once a reviewer signs off and the
// completeness checks pass; review findings name what is missing.

// CompletenessIssues returns the §4.2 review findings for a report: the
// fields an incident review would bounce the report for. An empty slice
// means the report is complete.
func CompletenessIssues(r *Report) []string {
	var issues []string
	if strings.TrimSpace(r.Title) == "" {
		issues = append(issues, "missing title")
	}
	if strings.TrimSpace(r.Impact) == "" {
		issues = append(issues, "missing service-level impact description")
	}
	// An empty root-cause list is acceptable — 29% of the paper's SEVs are
	// undetermined; the impact/title requirements above ensure the
	// symptoms are at least described.
	if r.Duration == 0 {
		issues = append(issues, "zero incident duration")
	}
	if r.Severity != Sev3 && len(r.ServicesAffected) == 0 {
		issues = append(issues, "service-affecting SEV lists no affected services")
	}
	sort.Strings(issues)
	return issues
}

// Publish runs the review on the stored report: if the completeness checks
// pass, the report is marked reviewed with the reviewer recorded;
// otherwise Publish returns an error naming every finding and the report
// stays unreviewed.
func (s *Store) Publish(id int, reviewer string) error {
	if strings.TrimSpace(reviewer) == "" {
		return fmt.Errorf("sev: empty reviewer")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.reports), func(i int) bool { return s.reports[i].ID >= id })
	if i >= len(s.reports) || s.reports[i].ID != id {
		return fmt.Errorf("sev: no report with ID %d", id)
	}
	r := &s.reports[i]
	if r.Reviewed {
		return fmt.Errorf("sev: report %d already published", id)
	}
	if issues := CompletenessIssues(r); len(issues) > 0 {
		return fmt.Errorf("sev: report %d incomplete: %s", id, strings.Join(issues, "; "))
	}
	r.Reviewed = true
	r.Reviewer = reviewer
	return nil
}

// Unreviewed returns the IDs of reports that have not passed review, in
// ID order — the review queue.
func (s *Store) Unreviewed() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ids []int
	for i := range s.reports {
		if !s.reports[i].Reviewed {
			ids = append(ids, s.reports[i].ID)
		}
	}
	return ids
}
