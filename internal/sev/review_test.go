package sev

import (
	"strings"
	"testing"
)

func completeReport() Report {
	r := validReport()
	r.Impact = "traffic shifted to alternate devices; retries observed"
	r.ServicesAffected = []string{"web"}
	return r
}

func TestCompletenessIssuesOnCompleteReport(t *testing.T) {
	r := completeReport()
	if issues := CompletenessIssues(&r); len(issues) != 0 {
		t.Errorf("complete report has issues: %v", issues)
	}
}

func TestCompletenessFindings(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"missing title", func(r *Report) { r.Title = " " }, "missing title"},
		{"missing impact", func(r *Report) { r.Impact = "" }, "impact"},
		{"zero duration", func(r *Report) { r.Duration = 0 }, "duration"},
		{"sev2 without services", func(r *Report) { r.Severity = Sev2; r.ServicesAffected = nil }, "affected services"},
	}
	for _, c := range cases {
		r := completeReport()
		c.mutate(&r)
		issues := CompletenessIssues(&r)
		found := false
		for _, issue := range issues {
			if strings.Contains(issue, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: issues %v missing %q", c.name, issues, c.want)
		}
	}
}

func TestSev3WithoutServicesIsAcceptable(t *testing.T) {
	// Contained SEV3s (redundant failures) need not list affected
	// services.
	r := completeReport()
	r.Severity = Sev3
	r.ServicesAffected = nil
	if issues := CompletenessIssues(&r); len(issues) != 0 {
		t.Errorf("SEV3 without services flagged: %v", issues)
	}
}

func TestPublishWorkflow(t *testing.T) {
	s := NewStore()
	r := completeReport()
	r.Reviewed = false
	id, err := s.Add(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Unreviewed(); len(got) != 1 || got[0] != id {
		t.Fatalf("Unreviewed = %v", got)
	}
	if err := s.Publish(id, "jjm"); err != nil {
		t.Fatal(err)
	}
	published, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !published.Reviewed || published.Reviewer != "jjm" {
		t.Errorf("published = %+v", published)
	}
	if got := s.Unreviewed(); len(got) != 0 {
		t.Errorf("review queue not drained: %v", got)
	}
	// Double publish rejected.
	if err := s.Publish(id, "other"); err == nil {
		t.Error("second publish accepted")
	}
}

func TestPublishRejectsIncomplete(t *testing.T) {
	s := NewStore()
	r := completeReport()
	r.Reviewed = false
	r.Impact = ""
	id, err := s.Add(r)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Publish(id, "jjm")
	if err == nil {
		t.Fatal("incomplete report published")
	}
	if !strings.Contains(err.Error(), "impact") {
		t.Errorf("error does not name the finding: %v", err)
	}
	got, _ := s.Get(id)
	if got.Reviewed {
		t.Error("rejected report marked reviewed")
	}
}

func TestPublishErrors(t *testing.T) {
	s := NewStore()
	if err := s.Publish(42, "jjm"); err == nil {
		t.Error("publish of missing report accepted")
	}
	r := completeReport()
	r.Reviewed = false
	id, _ := s.Add(r)
	if err := s.Publish(id, "  "); err == nil {
		t.Error("empty reviewer accepted")
	}
}
