package sev

import (
	"sort"

	"dcnr/internal/topology"
)

// Query is a filtered view over a Store's reports. The zero Query matches
// everything; With* methods narrow it. Queries are values: narrowing
// returns a new Query and never mutates the receiver.
//
// Evaluation uses the store's secondary indexes: every set-valued predicate
// (year, device type, severity, design, root cause) selects a posting list,
// the lists are intersected starting from the smallest, and the Since/Until
// window is applied as a residual filter over the candidates. A query
// narrowed only by the time window (for example Query().Since(a).Until(b))
// binary-searches the store's start-time-sorted index for the matching
// range instead; only a query with no predicate at all scans sequentially.
// An instrumented store (Store.Instrument) counts the two paths as
// sev_queries_indexed_total vs sev_queries_scan_total, so scan regressions
// show up in metrics instead of only in latency.
type Query struct {
	store        *Store
	year         *int
	deviceType   *topology.DeviceType
	severity     *Severity
	design       *topology.Design
	rootCause    *RootCause
	since, until *float64
}

// Query starts a query over all reports in the store.
func (s *Store) Query() Query { return Query{store: s} }

// Year narrows to incidents that started in the given calendar year.
func (q Query) Year(y int) Query { q.year = &y; return q }

// DeviceType narrows to incidents whose offending device has type t.
func (q Query) DeviceType(t topology.DeviceType) Query { q.deviceType = &t; return q }

// Severity narrows to incidents of the given level.
func (q Query) Severity(v Severity) Query { q.severity = &v; return q }

// Design narrows to incidents on devices of the given network design.
func (q Query) Design(d topology.Design) Query { q.design = &d; return q }

// RootCause narrows to incidents that carry the given root-cause category
// (a multi-cause SEV matches each of its categories, per §5.1's counting
// rule).
func (q Query) RootCause(c RootCause) Query { q.rootCause = &c; return q }

// Since narrows to incidents starting at or after t (hours since epoch).
func (q Query) Since(t float64) Query { q.since = &t; return q }

// Until narrows to incidents starting strictly before t (hours since
// epoch). Since(a).Until(b) selects the half-open window [a, b).
func (q Query) Until(t float64) Query { q.until = &t; return q }

// matches is the full sequential-scan predicate, used when no index
// applies and by tests cross-checking the index path.
func (q Query) matches(r *Report) bool {
	if q.year != nil && r.Year != *q.year {
		return false
	}
	if !q.matchesWindow(r) {
		return false
	}
	if q.severity != nil && r.Severity != *q.severity {
		return false
	}
	if q.deviceType != nil {
		t, err := r.DeviceType()
		if err != nil || t != *q.deviceType {
			return false
		}
	}
	if q.design != nil && r.Design() != *q.design {
		return false
	}
	if q.rootCause != nil {
		found := false
		for _, c := range r.EffectiveRootCauses() {
			if c == *q.rootCause {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// matchesWindow applies the residual Since/Until predicates — the only
// filters the posting lists do not encode.
func (q Query) matchesWindow(r *Report) bool {
	if q.since != nil && r.Start < *q.since {
		return false
	}
	if q.until != nil && r.Start >= *q.until {
		return false
	}
	return true
}

// postingsLocked collects the posting lists selected by q's indexed
// predicates. indexed is false when q has none (→ scan path). A predicate
// whose key is absent from its index yields an empty list, which makes the
// intersection empty. Caller holds the store's read lock.
func (q Query) postingsLocked() (lists [][]int, indexed bool) {
	s := q.store
	if q.year != nil {
		lists = append(lists, s.byYear[*q.year])
		indexed = true
	}
	if q.deviceType != nil {
		lists = append(lists, s.byType[*q.deviceType])
		indexed = true
	}
	if q.severity != nil {
		lists = append(lists, s.bySev[*q.severity])
		indexed = true
	}
	if q.design != nil {
		lists = append(lists, s.byDesign[*q.design])
		indexed = true
	}
	if q.rootCause != nil {
		lists = append(lists, s.byCause[*q.rootCause])
		indexed = true
	}
	return lists, indexed
}

// intersectPostings intersects sorted position lists, iterating the
// smallest and merge-filtering through the rest.
func intersectPostings(lists [][]int) []int {
	if len(lists) == 0 {
		return nil
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, list := range lists[1:] {
		if len(out) == 0 {
			return nil
		}
		merged := make([]int, 0, len(out))
		j := 0
		for _, pos := range out {
			for j < len(list) && list[j] < pos {
				j++
			}
			if j == len(list) {
				break
			}
			if list[j] == pos {
				merged = append(merged, pos)
			}
		}
		out = merged
	}
	return out
}

// forEach invokes fn for every matching report in position (= ID) order,
// holding the store's read lock for the duration.
func (q Query) forEach(fn func(pos int, r *Report)) {
	s := q.store
	s.mu.RLock()
	defer s.mu.RUnlock()
	if lists, indexed := q.postingsLocked(); indexed {
		s.mIndexed.Inc()
		if s.hPostings != nil {
			for _, list := range lists {
				s.hPostings.Observe(float64(len(list)))
			}
		}
		candidates := intersectPostings(lists)
		s.hCandidates.Observe(float64(len(candidates)))
		for _, pos := range candidates {
			if r := &s.reports[pos]; q.matchesWindow(r) {
				fn(pos, r)
			}
		}
		return
	}
	if q.since != nil || q.until != nil {
		// Window-only query: binary search the start-time index for the
		// matching range, then restore position order for the caller.
		s.mIndexed.Inc()
		in := s.startRangeLocked(q.since, q.until)
		s.hCandidates.Observe(float64(len(in)))
		candidates := append([]int(nil), in...)
		sort.Ints(candidates)
		for _, pos := range candidates {
			fn(pos, &s.reports[pos])
		}
		return
	}
	s.mScanned.Inc()
	for pos := range s.reports {
		if r := &s.reports[pos]; q.matches(r) {
			fn(pos, r)
		}
	}
}

// Reports returns the matching reports in ID order.
func (q Query) Reports() []Report {
	var out []Report
	q.forEach(func(_ int, r *Report) { out = append(out, *r) })
	return out
}

// Count returns the number of matching reports.
func (q Query) Count() int {
	n := 0
	q.forEach(func(int, *Report) { n++ })
	return n
}

// CountByDeviceType groups matching reports by offending device type.
func (q Query) CountByDeviceType() map[topology.DeviceType]int {
	out := make(map[topology.DeviceType]int)
	q.forEach(func(pos int, _ *Report) {
		if t := q.store.types[pos]; t >= 0 {
			out[t]++
		}
	})
	return out
}

// CountBySeverity groups matching reports by severity level.
func (q Query) CountBySeverity() map[Severity]int {
	out := make(map[Severity]int)
	q.forEach(func(_ int, r *Report) { out[r.Severity]++ })
	return out
}

// CountByYear groups matching reports by start year.
func (q Query) CountByYear() map[int]int {
	out := make(map[int]int)
	q.forEach(func(_ int, r *Report) { out[r.Year]++ })
	return out
}

// CountByRootCause groups matching reports by root-cause category. A SEV
// with multiple root causes counts toward each (§5.1); one with none counts
// as Undetermined.
func (q Query) CountByRootCause() map[RootCause]int {
	out := make(map[RootCause]int)
	q.forEach(func(_ int, r *Report) {
		for _, c := range r.EffectiveRootCauses() {
			out[c]++
		}
	})
	return out
}

// CountBySeverityDeviceType groups matching reports by severity level and,
// within each level, by device type — Figure 4's nested breakdown in one
// pass.
func (q Query) CountBySeverityDeviceType() map[Severity]map[topology.DeviceType]int {
	out := make(map[Severity]map[topology.DeviceType]int)
	q.forEach(func(pos int, r *Report) {
		row := out[r.Severity]
		if row == nil {
			row = make(map[topology.DeviceType]int)
			out[r.Severity] = row
		}
		if t := q.store.types[pos]; t >= 0 {
			row[t]++
		}
	})
	return out
}

// CountByYearSeverity groups matching reports by start year and severity
// level in one pass (Figure 5's numerators).
func (q Query) CountByYearSeverity() map[int]map[Severity]int {
	out := make(map[int]map[Severity]int)
	q.forEach(func(_ int, r *Report) {
		row := out[r.Year]
		if row == nil {
			row = make(map[Severity]int)
			out[r.Year] = row
		}
		row[r.Severity]++
	})
	return out
}

// CountByYearDeviceType groups matching reports by start year and device
// type in one pass (Figures 7 and 8's numerators).
func (q Query) CountByYearDeviceType() map[int]map[topology.DeviceType]int {
	out := make(map[int]map[topology.DeviceType]int)
	q.forEach(func(pos int, r *Report) {
		row := out[r.Year]
		if row == nil {
			row = make(map[topology.DeviceType]int)
			out[r.Year] = row
		}
		if t := q.store.types[pos]; t >= 0 {
			row[t]++
		}
	})
	return out
}

// CountByYearDesign groups matching reports by start year and network
// design in one pass (Figures 9 and 10's numerators).
func (q Query) CountByYearDesign() map[int]map[topology.Design]int {
	out := make(map[int]map[topology.Design]int)
	q.forEach(func(pos int, r *Report) {
		row := out[r.Year]
		if row == nil {
			row = make(map[topology.Design]int)
			out[r.Year] = row
		}
		if t := q.store.types[pos]; t >= 0 {
			row[t.Design()]++
		}
	})
	return out
}

// Resolutions returns the resolution times (hours) of matching reports.
func (q Query) Resolutions() []float64 {
	var out []float64
	q.forEach(func(_ int, r *Report) { out = append(out, r.Resolution) })
	return out
}

// ResolutionsByDeviceType groups matching reports' resolution times by
// device type in one pass (Figure 13's samples).
func (q Query) ResolutionsByDeviceType() map[topology.DeviceType][]float64 {
	out := make(map[topology.DeviceType][]float64)
	q.forEach(func(pos int, r *Report) {
		if t := q.store.types[pos]; t >= 0 {
			out[t] = append(out[t], r.Resolution)
		}
	})
	return out
}

// ResolutionsByYear groups matching reports' resolution times by start
// year in one pass (Figure 14's samples).
func (q Query) ResolutionsByYear() map[int][]float64 {
	out := make(map[int][]float64)
	q.forEach(func(_ int, r *Report) { out[r.Year] = append(out[r.Year], r.Resolution) })
	return out
}

// Starts returns the start times (hours since epoch) of matching reports
// in ascending order.
func (q Query) Starts() []float64 {
	var out []float64
	q.forEach(func(_ int, r *Report) { out = append(out, r.Start) })
	sort.Float64s(out)
	return out
}
