package sev

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"dcnr/internal/obs"
	"dcnr/internal/topology"
)

// Sharded partitions SEV reports across goroutine-owned stores: each
// shard is a private *Store driven by a single owner goroutine that
// executes operations sent over its channel, so no query or ingest ever
// contends on a store-wide lock. Queries fan out to every shard in
// parallel and merge the partial aggregates; ingest assigns globally
// unique IDs up front and distributes the batch round-robin.
//
// The dataset generation (Generation) is bumped once per successful
// ingest batch — the serve layer keys its result cache on it, so a bump
// invalidates every cached aggregation at once.
//
// A Sharded must be created with NewSharded and released with Close;
// operations after Close panic.
type Sharded struct {
	shards []*shard
	wg     sync.WaitGroup
	gen    atomic.Uint64

	// ingestMu serializes ingest only — queries never touch it. ids holds
	// every assigned or explicit report ID for global duplicate rejection.
	ingestMu sync.Mutex
	ids      map[int]bool
	nextID   int
}

// shard is one goroutine-owned partition. Only the owner goroutine
// touches store once the shard is running.
type shard struct {
	store *Store
	ops   chan func(*Store)
}

// NewSharded returns a sharded store with n partitions (n < 1 is treated
// as 1), each owned by its own goroutine.
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{ids: make(map[int]bool), nextID: 1}
	s.shards = make([]*shard, n)
	for i := range s.shards {
		sh := &shard{store: NewStore(), ops: make(chan func(*Store), 16)}
		s.shards[i] = sh
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for op := range sh.ops {
				op(sh.store)
			}
		}()
	}
	return s
}

// Close stops every shard goroutine and waits for them to drain. No
// operation may be issued after (or concurrently with) Close.
func (s *Sharded) Close() {
	for _, sh := range s.shards {
		close(sh.ops)
	}
	s.wg.Wait()
}

// Shards returns the partition count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Generation returns the dataset generation: bumped once per successful
// AddAll or ReadJSON batch.
func (s *Sharded) Generation() uint64 { return s.gen.Load() }

// Instrument attaches one shared metrics registry to every shard's query
// engine; counters are atomic, so the shards aggregate into the same
// series. reg may be nil.
func (s *Sharded) Instrument(reg *obs.Registry) {
	s.fanOut(func(st *Store) int { st.Instrument(reg); return 0 })
}

// fanOutInto runs fn against every shard's store in parallel (each on
// its owner goroutine), writing the per-shard results into out in shard
// order.
func fanOutInto[T any](s *Sharded, out []T, fn func(*Store) T) {
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		i, sh := i, sh
		sh.ops <- func(st *Store) {
			defer wg.Done()
			out[i] = fn(st)
		}
	}
	wg.Wait()
}

func (s *Sharded) fanOut(fn func(*Store) int) []int {
	out := make([]int, len(s.shards))
	fanOutInto(s, out, fn)
	return out
}

// Len returns the total number of stored reports across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, c := range s.fanOut(func(st *Store) int { return st.Len() }) {
		n += c
	}
	return n
}

// Get returns the report with the given ID from whichever shard holds it.
func (s *Sharded) Get(id int) (Report, error) {
	type hit struct {
		r  Report
		ok bool
	}
	out := make([]hit, len(s.shards))
	fanOutInto(s, out, func(st *Store) hit {
		r, err := st.Get(id)
		return hit{r, err == nil}
	})
	for _, h := range out {
		if h.ok {
			return h.r, nil
		}
	}
	return Report{}, fmt.Errorf("sev: no report with ID %d", id)
}

// AddAll validates the batch, assigns globally unique IDs (a report with
// ID 0 gets a fresh one; explicit IDs are preserved and rejected on
// collision), distributes the reports round-robin across the shards, and
// bumps the dataset generation. On error nothing is ingested. It returns
// the assigned IDs in input order.
func (s *Sharded) AddAll(batch []Report) ([]int, error) {
	for i := range batch {
		if err := batch[i].Validate(); err != nil {
			return nil, fmt.Errorf("sev: report %d invalid: %w", batch[i].ID, err)
		}
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	seen := make(map[int]bool, len(batch))
	for i := range batch {
		if id := batch[i].ID; id != 0 {
			if s.ids[id] || seen[id] {
				return nil, fmt.Errorf("sev: duplicate report ID %d in batch", id)
			}
			seen[id] = true
		}
	}
	ids := make([]int, len(batch))
	chunks := make([][]Report, len(s.shards))
	for i := range batch {
		r := batch[i]
		if r.ID == 0 {
			for seen[s.nextID] || s.ids[s.nextID] {
				s.nextID++
			}
			r.ID = s.nextID
			s.nextID++
		} else if r.ID >= s.nextID {
			s.nextID = r.ID + 1
		}
		ids[i] = r.ID
		s.ids[r.ID] = true
		w := i % len(chunks)
		chunks[w] = append(chunks[w], r)
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		if len(chunks[i]) == 0 {
			continue
		}
		wg.Add(1)
		i, sh := i, sh
		sh.ops <- func(st *Store) {
			defer wg.Done()
			_, errs[i] = st.AddAll(chunks[i])
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Unreachable: validation and global ID dedup already passed.
			return nil, err
		}
	}
	s.gen.Add(1)
	return ids, nil
}

// ReadJSON ingests the reports decoded from r as one batch, preserving
// explicit IDs with the same duplicate-rejection semantics as
// Store.ReadJSON. Unlike Store.ReadJSON it appends to the current
// dataset rather than replacing it; call it on a fresh Sharded for a
// whole-dataset load.
func (s *Sharded) ReadJSON(r io.Reader) error {
	var reports []Report
	if err := json.NewDecoder(r).Decode(&reports); err != nil {
		return fmt.Errorf("sev: decoding dataset: %w", err)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
	if _, err := s.AddAll(reports); err != nil {
		return err
	}
	return nil
}

// Query starts a fan-out query over every shard. The builder mirrors
// Store.Query; each aggregation dispatches the narrowed query to all
// shard goroutines and merges the partial results.
func (s *Sharded) Query() ShardedQuery { return ShardedQuery{s: s} }

// ShardedQuery is a filtered fan-out view over a Sharded store's
// reports. Like Query it is a value: narrowing returns a new one.
type ShardedQuery struct {
	s *Sharded
	q Query
}

// Year narrows to incidents that started in the given calendar year.
func (sq ShardedQuery) Year(y int) ShardedQuery { sq.q = sq.q.Year(y); return sq }

// DeviceType narrows to incidents whose offending device has type t.
func (sq ShardedQuery) DeviceType(t topology.DeviceType) ShardedQuery {
	sq.q = sq.q.DeviceType(t)
	return sq
}

// Severity narrows to incidents of the given level.
func (sq ShardedQuery) Severity(v Severity) ShardedQuery { sq.q = sq.q.Severity(v); return sq }

// Design narrows to incidents on devices of the given network design.
func (sq ShardedQuery) Design(d topology.Design) ShardedQuery { sq.q = sq.q.Design(d); return sq }

// RootCause narrows to incidents carrying the given root-cause category.
func (sq ShardedQuery) RootCause(c RootCause) ShardedQuery { sq.q = sq.q.RootCause(c); return sq }

// Since narrows to incidents starting at or after t (hours since epoch).
func (sq ShardedQuery) Since(t float64) ShardedQuery { sq.q = sq.q.Since(t); return sq }

// Until narrows to incidents starting strictly before t.
func (sq ShardedQuery) Until(t float64) ShardedQuery { sq.q = sq.q.Until(t); return sq }

// shardQuery runs fn with the query bound to every shard's store and
// returns the per-shard results.
func shardQuery[T any](sq ShardedQuery, fn func(Query) T) []T {
	out := make([]T, len(sq.s.shards))
	var wg sync.WaitGroup
	for i, sh := range sq.s.shards {
		wg.Add(1)
		i, sh := i, sh
		sh.ops <- func(st *Store) {
			defer wg.Done()
			q := sq.q
			q.store = st
			out[i] = fn(q)
		}
	}
	wg.Wait()
	return out
}

func mergeCounts[K comparable](parts []map[K]int) map[K]int {
	out := make(map[K]int)
	for _, p := range parts {
		for k, v := range p {
			out[k] += v
		}
	}
	return out
}

func mergeNested[K1, K2 comparable](parts []map[K1]map[K2]int) map[K1]map[K2]int {
	out := make(map[K1]map[K2]int)
	for _, p := range parts {
		for k1, row := range p {
			dst := out[k1]
			if dst == nil {
				dst = make(map[K2]int)
				out[k1] = dst
			}
			for k2, v := range row {
				dst[k2] += v
			}
		}
	}
	return out
}

func mergeSamples[K comparable](parts []map[K][]float64) map[K][]float64 {
	out := make(map[K][]float64)
	for _, p := range parts {
		for k, vs := range p {
			out[k] = append(out[k], vs...)
		}
	}
	return out
}

// Count returns the number of matching reports across all shards.
func (sq ShardedQuery) Count() int {
	n := 0
	for _, c := range shardQuery(sq, Query.Count) {
		n += c
	}
	return n
}

// CountByDeviceType groups matching reports by offending device type.
func (sq ShardedQuery) CountByDeviceType() map[topology.DeviceType]int {
	return mergeCounts(shardQuery(sq, Query.CountByDeviceType))
}

// CountBySeverity groups matching reports by severity level.
func (sq ShardedQuery) CountBySeverity() map[Severity]int {
	return mergeCounts(shardQuery(sq, Query.CountBySeverity))
}

// CountByYear groups matching reports by start year.
func (sq ShardedQuery) CountByYear() map[int]int {
	return mergeCounts(shardQuery(sq, Query.CountByYear))
}

// CountByRootCause groups matching reports by root-cause category.
func (sq ShardedQuery) CountByRootCause() map[RootCause]int {
	return mergeCounts(shardQuery(sq, Query.CountByRootCause))
}

// CountBySeverityDeviceType groups by severity and, within each level,
// by device type.
func (sq ShardedQuery) CountBySeverityDeviceType() map[Severity]map[topology.DeviceType]int {
	return mergeNested(shardQuery(sq, Query.CountBySeverityDeviceType))
}

// CountByYearSeverity groups by start year and severity level.
func (sq ShardedQuery) CountByYearSeverity() map[int]map[Severity]int {
	return mergeNested(shardQuery(sq, Query.CountByYearSeverity))
}

// CountByYearDeviceType groups by start year and device type.
func (sq ShardedQuery) CountByYearDeviceType() map[int]map[topology.DeviceType]int {
	return mergeNested(shardQuery(sq, Query.CountByYearDeviceType))
}

// CountByYearDesign groups by start year and network design.
func (sq ShardedQuery) CountByYearDesign() map[int]map[topology.Design]int {
	return mergeNested(shardQuery(sq, Query.CountByYearDesign))
}

// Resolutions returns the resolution times (hours) of matching reports.
// Order across shards is unspecified; percentile consumers sort anyway.
func (sq ShardedQuery) Resolutions() []float64 {
	var out []float64
	for _, part := range shardQuery(sq, Query.Resolutions) {
		out = append(out, part...)
	}
	return out
}

// ResolutionsByDeviceType groups matching resolution times by device type.
func (sq ShardedQuery) ResolutionsByDeviceType() map[topology.DeviceType][]float64 {
	return mergeSamples(shardQuery(sq, Query.ResolutionsByDeviceType))
}

// ResolutionsByYear groups matching resolution times by start year.
func (sq ShardedQuery) ResolutionsByYear() map[int][]float64 {
	return mergeSamples(shardQuery(sq, Query.ResolutionsByYear))
}

// Starts returns the start times of matching reports in ascending order.
func (sq ShardedQuery) Starts() []float64 {
	var out []float64
	for _, part := range shardQuery(sq, Query.Starts) {
		out = append(out, part...)
	}
	sort.Float64s(out)
	return out
}
