package sev

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dcnr/internal/obs"
	"dcnr/internal/topology"
)

// shuffledDataset returns a JSON dataset whose report IDs are present but
// deliberately out of ascending order.
func shuffledDataset() string {
	devices := []string{
		"rsw001.cl001.dc1.ra",
		"csa001.dc1.ra",
		"core001.dc1.ra",
		"fsw001.pod001.dc2.rb",
	}
	ids := []int{7, 2, 9, 4}
	var sb strings.Builder
	sb.WriteString("[")
	for i, id := range ids {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id":%d,"severity":3,"device":%q,"start":%d,"duration":1,"resolution":2,"year":%d}`,
			id, devices[i], 100*i, 2011+i)
	}
	sb.WriteString("]")
	return sb.String()
}

// Regression: Get used to binary-search the report slice by ID, so a
// dataset loaded in non-ascending ID order made existing IDs unfindable.
func TestReadJSONShuffledIDsGet(t *testing.T) {
	s := NewStore()
	if err := s.ReadJSON(strings.NewReader(shuffledDataset())); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{7, 2, 9, 4} {
		r, err := s.Get(id)
		if err != nil {
			t.Errorf("Get(%d) after shuffled load: %v", id, err)
			continue
		}
		if r.ID != id {
			t.Errorf("Get(%d) returned report %d", id, r.ID)
		}
	}
	if _, err := s.Get(3); err == nil {
		t.Error("Get(3) should fail: ID not in dataset")
	}
	// All() must come back in ascending ID order regardless of load order.
	all := s.All()
	for i := 1; i < len(all); i++ {
		if all[i].ID < all[i-1].ID {
			t.Fatalf("All() not in ID order: %d before %d", all[i-1].ID, all[i].ID)
		}
	}
	// nextID continues after the max loaded ID.
	if id, err := s.Add(Report{Severity: Sev3, Device: "rsw002.cl001.dc1.ra", Duration: 1, Resolution: 2, Year: 2017}); err != nil || id != 10 {
		t.Errorf("Add after shuffled load: id=%d err=%v, want 10", id, err)
	}
}

func TestReadJSONRejectsDuplicateIDs(t *testing.T) {
	s := NewStore()
	data := `[
		{"id":3,"severity":3,"device":"rsw001.cl001.dc1.ra","start":1,"duration":1,"resolution":2,"year":2011},
		{"id":3,"severity":2,"device":"csa001.dc1.ra","start":2,"duration":1,"resolution":2,"year":2012}
	]`
	err := s.ReadJSON(strings.NewReader(data))
	if err == nil {
		t.Fatal("dataset with duplicate IDs accepted")
	}
	if !strings.Contains(err.Error(), "duplicate report ID 3") {
		t.Errorf("error %q does not name the duplicate ID", err)
	}
	if s.Len() != 0 {
		t.Error("rejected dataset partially loaded")
	}
}

// indexStore builds a store whose reports spread across every indexed
// dimension: years, device types (and hence designs), severities, and
// single/multi/empty root-cause sets.
func indexStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	devices := []string{
		"rsw001.cl001.dc1.ra",
		"csa001.dc1.ra",
		"csw001.cl001.dc1.ra",
		"fsw001.pod001.dc2.rb",
		"ssw001.pod001.dc2.rb",
		"esw001.pod001.dc2.rb",
		"core001.dc1.ra",
	}
	causes := [][]RootCause{
		{Hardware},
		{Maintenance, Configuration},
		nil,
		{Bug, Bug}, // duplicate cause within one report
		{Accident, Capacity},
	}
	for i := 0; i < 60; i++ {
		r := Report{
			Severity:   Severity(i%3 + 1),
			Device:     devices[i%len(devices)],
			RootCauses: causes[i%len(causes)],
			Start:      float64(i * 500),
			Duration:   1,
			Resolution: float64(2 + i%7),
			Year:       2011 + i%7,
		}
		if _, err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// scanCount recomputes a query result by brute force over All(), the
// ground truth the posting-list intersection must agree with.
func scanCount(s *Store, match func(Report) bool) int {
	n := 0
	for _, r := range s.All() {
		if match(r) {
			n++
		}
	}
	return n
}

func TestIndexedQueriesMatchScan(t *testing.T) {
	s := indexStore(t)
	typeOf := func(r Report) topology.DeviceType {
		dt, err := r.DeviceType()
		if err != nil {
			t.Fatal(err)
		}
		return dt
	}
	hasCause := func(r Report, c RootCause) bool {
		for _, rc := range r.EffectiveRootCauses() {
			if rc == c {
				return true
			}
		}
		return false
	}
	for year := 2011; year <= 2017; year++ {
		for _, sv := range Severities {
			got := s.Query().Year(year).Severity(sv).Count()
			want := scanCount(s, func(r Report) bool { return r.Year == year && r.Severity == sv })
			if got != want {
				t.Errorf("Year(%d).Severity(%v).Count() = %d, want %d", year, sv, got, want)
			}
		}
		for _, dt := range topology.IntraDCTypes {
			got := s.Query().Year(year).DeviceType(dt).Count()
			want := scanCount(s, func(r Report) bool { return r.Year == year && typeOf(r) == dt })
			if got != want {
				t.Errorf("Year(%d).DeviceType(%v).Count() = %d, want %d", year, dt, got, want)
			}
		}
	}
	for _, c := range RootCauses {
		got := s.Query().RootCause(c).Count()
		want := scanCount(s, func(r Report) bool { return hasCause(r, c) })
		if got != want {
			t.Errorf("RootCause(%v).Count() = %d, want %d", c, got, want)
		}
	}
	for _, d := range []topology.Design{topology.DesignShared, topology.DesignCluster, topology.DesignFabric} {
		got := s.Query().Design(d).Severity(Sev2).Count()
		want := scanCount(s, func(r Report) bool { return r.Design() == d && r.Severity == Sev2 })
		if got != want {
			t.Errorf("Design(%v).Severity(2).Count() = %d, want %d", d, got, want)
		}
	}
	// Index narrowing combined with the residual time window.
	got := s.Query().Year(2013).Since(1000).Until(20000).Count()
	want := scanCount(s, func(r Report) bool { return r.Year == 2013 && r.Start >= 1000 && r.Start < 20000 })
	if got != want {
		t.Errorf("windowed indexed count = %d, want %d", got, want)
	}
	// Missing index keys yield empty results, not errors.
	if n := s.Query().Year(1999).Count(); n != 0 {
		t.Errorf("Year(1999).Count() = %d, want 0", n)
	}
}

// A report listing the same cause twice matches the cause predicate once
// but multi-counts in CountByRootCause, exactly like the scan semantics.
func TestDuplicateCauseSemantics(t *testing.T) {
	s := NewStore()
	r := Report{Severity: Sev3, Device: "rsw001.cl001.dc1.ra",
		RootCauses: []RootCause{Bug, Bug}, Duration: 1, Resolution: 2, Year: 2015}
	if _, err := s.Add(r); err != nil {
		t.Fatal(err)
	}
	if n := s.Query().RootCause(Bug).Count(); n != 1 {
		t.Errorf("RootCause(Bug).Count() = %d, want 1", n)
	}
	if n := s.Query().CountByRootCause()[Bug]; n != 2 {
		t.Errorf("CountByRootCause()[Bug] = %d, want 2 (per-occurrence)", n)
	}
}

func TestGroupedQueriesMatchPerKeyQueries(t *testing.T) {
	s := indexStore(t)
	byYearSev := s.Query().CountByYearSeverity()
	for year := 2011; year <= 2017; year++ {
		for _, sv := range Severities {
			if got, want := byYearSev[year][sv], s.Query().Year(year).Severity(sv).Count(); got != want {
				t.Errorf("CountByYearSeverity[%d][%v] = %d, want %d", year, sv, got, want)
			}
		}
	}
	byYearType := s.Query().CountByYearDeviceType()
	for year := 2011; year <= 2017; year++ {
		for _, dt := range topology.IntraDCTypes {
			if got, want := byYearType[year][dt], s.Query().Year(year).DeviceType(dt).Count(); got != want {
				t.Errorf("CountByYearDeviceType[%d][%v] = %d, want %d", year, dt, got, want)
			}
		}
	}
	byYearDesign := s.Query().CountByYearDesign()
	for year := 2011; year <= 2017; year++ {
		for _, d := range []topology.Design{topology.DesignCluster, topology.DesignFabric} {
			if got, want := byYearDesign[year][d], s.Query().Year(year).Design(d).Count(); got != want {
				t.Errorf("CountByYearDesign[%d][%v] = %d, want %d", year, d, got, want)
			}
		}
	}
	bySevType := s.Query().Year(2014).CountBySeverityDeviceType()
	for _, sv := range Severities {
		for _, dt := range topology.IntraDCTypes {
			if got, want := bySevType[sv][dt], s.Query().Year(2014).Severity(sv).DeviceType(dt).Count(); got != want {
				t.Errorf("CountBySeverityDeviceType[%v][%v] = %d, want %d", sv, dt, got, want)
			}
		}
	}
	byTypeRes := s.Query().ResolutionsByDeviceType()
	for _, dt := range topology.IntraDCTypes {
		if got, want := len(byTypeRes[dt]), len(s.Query().DeviceType(dt).Resolutions()); got != want {
			t.Errorf("ResolutionsByDeviceType[%v] has %d samples, want %d", dt, got, want)
		}
	}
	byYearRes := s.Query().ResolutionsByYear()
	for year := 2011; year <= 2017; year++ {
		if got, want := len(byYearRes[year]), s.Query().Year(year).Count(); got != want {
			t.Errorf("ResolutionsByYear[%d] has %d samples, want %d", year, got, want)
		}
	}
}

// The indexes must stay consistent while writers add reports concurrently
// with readers aggregating — run under go test -race.
func TestStoreConcurrentAddAndQuery(t *testing.T) {
	s := NewStore()
	const writers, perWriter, readers = 4, 200, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				r := validReport()
				r.Year = 2011 + j%7
				r.Severity = Severity(j%3 + 1)
				if _, err := s.Add(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if s.Query().Year(2015).Count() < 0 {
					t.Error("negative count")
					return
				}
				byYearSev := s.Query().CountByYearSeverity()
				for _, row := range byYearSev {
					for _, n := range row {
						if n < 0 {
							t.Error("negative grouped count")
							return
						}
					}
				}
				// ID 1 exists as soon as any Add has landed.
				if s.Len() > 0 {
					if _, err := s.Get(1); err != nil {
						t.Errorf("Get(1) with non-empty store: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got, want := s.Len(), writers*perWriter; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got, want := s.Query().Count(), writers*perWriter; got != want {
		t.Fatalf("indexed total = %d, want %d", got, want)
	}
	// Every assigned ID resolves through the ID index.
	for id := 1; id <= writers*perWriter; id++ {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
	}
}

func TestQueryPathCounters(t *testing.T) {
	s := indexStore(t)
	reg := obs.NewRegistry()
	s.Instrument(reg)

	s.Query().Year(2013).Count()                      // indexed: one posting list
	s.Query().Year(2013).Severity(Sev2).Count()       // indexed: two posting lists
	s.Query().Since(1000).Until(5000).Count()         // window only → time index
	s.Query().Count()                                 // no predicate → sequential scan
	s.Query().Since(0).Year(2013).Severity(1).Count() // window + index → indexed

	snap := reg.Snapshot()
	if got := snap.Counters["sev_queries_indexed_total"]; got != 4 {
		t.Errorf("indexed queries = %d, want 4", got)
	}
	if got := snap.Counters["sev_queries_scan_total"]; got != 1 {
		t.Errorf("scan queries = %d, want 1", got)
	}
	// Posting lists observed: 1 + 2 + 2 = 5 across the posting-list
	// queries (the time index has no posting list).
	if got := snap.Histograms["sev_posting_list_size"].Count; got != 5 {
		t.Errorf("posting list observations = %d, want 5", got)
	}
	if got := snap.Histograms["sev_query_candidates"].Count; got != 4 {
		t.Errorf("candidate observations = %d, want 4", got)
	}
	// An un-instrumented store still answers identically.
	s2 := indexStore(t)
	if s2.Query().Year(2013).Count() != s.Query().Year(2013).Count() {
		t.Error("instrumentation changed query results")
	}
}

// TestWindowQueriesUseTimeIndex pins the former scan trap: a query narrowed
// only by Since/Until must take the start-time index, leaving
// sev_queries_scan_total untouched, and must agree with the brute-force
// predicate even when reports were added out of chronological order.
func TestWindowQueriesUseTimeIndex(t *testing.T) {
	s := NewStore()
	// Starts deliberately out of order, with a tie at 500.
	for i, start := range []float64{3000, 500, 9000, 500, 0, 7000, 1500} {
		r := Report{
			Severity: Sev3, Device: "rsw001.cl001.dc1.ra",
			Start: start, Duration: 1, Resolution: 2, Year: 2011 + i%3,
		}
		if _, err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	s.Instrument(reg)

	windows := []struct{ since, until float64 }{
		{0, 10000},   // everything
		{500, 3000},  // interior, includes the tied starts
		{501, 3001},  // bounds between starts
		{9000, 9000}, // empty: until == since
		{8000, 1000}, // degenerate: until < since
	}
	for _, w := range windows {
		got := s.Query().Since(w.since).Until(w.until).Reports()
		want := 0
		for _, r := range s.All() {
			if r.Start >= w.since && r.Start < w.until {
				want++
			}
		}
		if len(got) != want {
			t.Errorf("[%v,%v) returned %d reports, want %d", w.since, w.until, len(got), want)
		}
		for i := 1; i < len(got); i++ {
			if got[i].ID <= got[i-1].ID {
				t.Errorf("[%v,%v) results out of ID order", w.since, w.until)
			}
		}
	}
	// One-sided windows ride the same index.
	if got := s.Query().Since(1500).Count(); got != 4 {
		t.Errorf("Since(1500).Count() = %d, want 4", got)
	}
	if got := s.Query().Until(1500).Count(); got != 3 {
		t.Errorf("Until(1500).Count() = %d, want 3", got)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["sev_queries_scan_total"]; got != 0 {
		t.Errorf("window queries scanned %d times, want 0 (time index)", got)
	}
	if got := snap.Counters["sev_queries_indexed_total"]; got != int64(len(windows)+2) {
		t.Errorf("indexed queries = %d, want %d", got, len(windows)+2)
	}

	// The index survives a ReadJSON rebuild from shuffled input.
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := s2.Query().Since(500).Until(3000).Count(), s.Query().Since(500).Until(3000).Count(); got != want {
		t.Errorf("rebuilt index count = %d, want %d", got, want)
	}
}

func TestWriteReadRoundTripAfterShuffledLoad(t *testing.T) {
	s := NewStore()
	if err := s.ReadJSON(strings.NewReader(shuffledDataset())); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("round trip lost reports: %d != %d", s2.Len(), s.Len())
	}
}
