package sev

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"dcnr/internal/topology"
)

func validReport() Report {
	return Report{
		Severity:   Sev3,
		Device:     "rsw001.pod001.dc1.regiona",
		RootCauses: []RootCause{Hardware},
		Start:      100,
		Duration:   2,
		Resolution: 5,
		Year:       2011,
		Title:      "switch crash from software bug",
	}
}

func TestSeverityString(t *testing.T) {
	if Sev1.String() != "SEV1" || Sev3.String() != "SEV3" {
		t.Error("severity strings wrong")
	}
	if Severity(0).Valid() || Severity(4).Valid() {
		t.Error("invalid severities reported valid")
	}
	if !strings.Contains(Severity(9).String(), "9") {
		t.Error("out-of-range severity String")
	}
}

func TestRootCauseNames(t *testing.T) {
	want := map[RootCause]string{
		Maintenance:   "Maintenance",
		Hardware:      "Hardware",
		Configuration: "Configuration",
		Bug:           "Bug",
		Accident:      "Accidents",
		Capacity:      "Capacity planning",
		Undetermined:  "Undetermined",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if !Configuration.HumanInduced() || !Bug.HumanInduced() {
		t.Error("config and bug are human-induced")
	}
	if Hardware.HumanInduced() || Maintenance.HumanInduced() {
		t.Error("hardware/maintenance are not human-induced")
	}
}

func TestReportValidate(t *testing.T) {
	r0 := validReport()
	if err := r0.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"bad severity", func(r *Report) { r.Severity = 0 }},
		{"missing device", func(r *Report) { r.Device = "" }},
		{"unparseable device", func(r *Report) { r.Device = "mystery1" }},
		{"negative duration", func(r *Report) { r.Duration = -1 }},
		{"resolution < duration", func(r *Report) { r.Resolution = 1; r.Duration = 2 }},
		{"negative start", func(r *Report) { r.Start = -1 }},
		{"bad root cause", func(r *Report) { r.RootCauses = []RootCause{RootCause(99)} }},
	}
	for _, c := range cases {
		r := validReport()
		c.mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestReportDeviceTypeAndDesign(t *testing.T) {
	r := validReport()
	dt, err := r.DeviceType()
	if err != nil || dt != topology.RSW {
		t.Errorf("DeviceType = %v, %v", dt, err)
	}
	r.Device = "csa001.dc1.regiona"
	if r.Design() != topology.DesignCluster {
		t.Error("CSA design != cluster")
	}
	r.Device = "fsw001.pod001.dc2.regionb"
	if r.Design() != topology.DesignFabric {
		t.Error("FSW design != fabric")
	}
}

func TestEffectiveRootCauses(t *testing.T) {
	r := validReport()
	r.RootCauses = nil
	got := r.EffectiveRootCauses()
	if len(got) != 1 || got[0] != Undetermined {
		t.Errorf("empty root causes → %v, want [Undetermined]", got)
	}
}

func TestStoreAddAssignsSequentialIDs(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 3; i++ {
		id, err := s.Add(validReport())
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Errorf("ID = %d, want %d", id, i)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreAddRejectsInvalid(t *testing.T) {
	s := NewStore()
	r := validReport()
	r.Device = ""
	if _, err := s.Add(r); err == nil {
		t.Error("invalid report accepted")
	}
	if s.Len() != 0 {
		t.Error("invalid report stored")
	}
}

func TestStoreGet(t *testing.T) {
	s := NewStore()
	id, _ := s.Add(validReport())
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "switch crash from software bug" {
		t.Errorf("Get returned %+v", got)
	}
	if _, err := s.Get(999); err == nil {
		t.Error("Get(999) should fail")
	}
}

func TestStoreConcurrentAdd(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := s.Add(validReport()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
	seen := make(map[int]bool)
	for _, r := range s.All() {
		if seen[r.ID] {
			t.Fatalf("duplicate ID %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func seededStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	add := func(r Report) {
		t.Helper()
		if _, err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	add(Report{Severity: Sev3, Device: "rsw001.cl001.dc1.ra", RootCauses: []RootCause{Hardware}, Start: 10, Duration: 1, Resolution: 2, Year: 2011})
	add(Report{Severity: Sev2, Device: "csa001.dc1.ra", RootCauses: []RootCause{Maintenance, Configuration}, Start: 9000, Duration: 3, Resolution: 8, Year: 2012})
	add(Report{Severity: Sev1, Device: "core001.dc1.ra", RootCauses: nil, Start: 40000, Duration: 5, Resolution: 50, Year: 2015})
	add(Report{Severity: Sev3, Device: "fsw001.pod001.dc2.rb", RootCauses: []RootCause{Bug}, Start: 41000, Duration: 1, Resolution: 4, Year: 2015})
	return s
}

func TestQueryFilters(t *testing.T) {
	s := seededStore(t)
	if got := s.Query().Count(); got != 4 {
		t.Errorf("all count = %d", got)
	}
	if got := s.Query().Year(2015).Count(); got != 2 {
		t.Errorf("year 2015 count = %d", got)
	}
	if got := s.Query().DeviceType(topology.CSA).Count(); got != 1 {
		t.Errorf("CSA count = %d", got)
	}
	if got := s.Query().Severity(Sev1).Count(); got != 1 {
		t.Errorf("SEV1 count = %d", got)
	}
	if got := s.Query().Design(topology.DesignFabric).Count(); got != 1 {
		t.Errorf("fabric count = %d", got)
	}
	if got := s.Query().Year(2015).Severity(Sev3).Count(); got != 1 {
		t.Errorf("combined filter count = %d", got)
	}
}

func TestQueryRootCauseMultiCounting(t *testing.T) {
	s := seededStore(t)
	// The CSA report carries both Maintenance and Configuration.
	if got := s.Query().RootCause(Maintenance).Count(); got != 1 {
		t.Errorf("maintenance count = %d", got)
	}
	if got := s.Query().RootCause(Configuration).Count(); got != 1 {
		t.Errorf("configuration count = %d", got)
	}
	// The core report has no root causes → Undetermined.
	if got := s.Query().RootCause(Undetermined).Count(); got != 1 {
		t.Errorf("undetermined count = %d", got)
	}
	byCause := s.Query().CountByRootCause()
	total := 0
	for _, n := range byCause {
		total += n
	}
	if total != 5 { // 1 + 2 (multi) + 1 + 1
		t.Errorf("root cause total = %d, want 5 (multi-counted)", total)
	}
}

func TestQueryGroupBys(t *testing.T) {
	s := seededStore(t)
	byType := s.Query().CountByDeviceType()
	if byType[topology.RSW] != 1 || byType[topology.Core] != 1 {
		t.Errorf("byType = %v", byType)
	}
	bySev := s.Query().CountBySeverity()
	if bySev[Sev3] != 2 || bySev[Sev2] != 1 || bySev[Sev1] != 1 {
		t.Errorf("bySev = %v", bySev)
	}
	byYear := s.Query().CountByYear()
	if byYear[2015] != 2 {
		t.Errorf("byYear = %v", byYear)
	}
}

func TestQueryResolutionsAndStarts(t *testing.T) {
	s := seededStore(t)
	res := s.Query().Year(2015).Resolutions()
	if len(res) != 2 {
		t.Fatalf("resolutions = %v", res)
	}
	starts := s.Query().Starts()
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			t.Fatal("starts not sorted")
		}
	}
}

func TestQueryIsValueSemantics(t *testing.T) {
	s := seededStore(t)
	base := s.Query()
	_ = base.Year(2015)
	if got := base.Count(); got != 4 {
		t.Errorf("narrowing mutated the base query: count = %d", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := seededStore(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("round trip lost reports: %d != %d", s2.Len(), s.Len())
	}
	a, b := s.All(), s2.All()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Device != b[i].Device || a[i].Severity != b[i].Severity {
			t.Errorf("report %d differs after round trip", i)
		}
	}
	// IDs continue after the max loaded ID.
	id, err := s2.Add(validReport())
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 {
		t.Errorf("next ID after load = %d, want 5", id)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	s := NewStore()
	if err := s.ReadJSON(strings.NewReader(`[{"severity":9,"device":"rsw1"}]`)); err == nil {
		t.Error("invalid dataset accepted")
	}
	if err := s.ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	f := func(sevLevel uint8, dur, res float64) bool {
		r := validReport()
		r.Severity = Severity(sevLevel%3 + 1)
		dur = math.Abs(math.Mod(dur, 1000))
		res = math.Abs(math.Mod(res, 1000))
		if math.IsNaN(dur) {
			dur = 0
		}
		if math.IsNaN(res) {
			res = 0
		}
		r.Duration = dur
		r.Resolution = dur + res
		s := NewStore()
		if _, err := s.Add(r); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			return false
		}
		s2 := NewStore()
		if err := s2.ReadJSON(&buf); err != nil {
			return false
		}
		got := s2.All()[0]
		return got.Severity == r.Severity && got.Duration == r.Duration
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryTimeWindow(t *testing.T) {
	s := seededStore(t)
	// Reports start at 10, 9000, 40000, 41000.
	if got := s.Query().Since(9000).Count(); got != 3 {
		t.Errorf("Since(9000) = %d, want 3", got)
	}
	if got := s.Query().Until(9000).Count(); got != 1 {
		t.Errorf("Until(9000) = %d, want 1 (half-open)", got)
	}
	if got := s.Query().Since(9000).Until(41000).Count(); got != 2 {
		t.Errorf("window [9000, 41000) = %d, want 2", got)
	}
	if got := s.Query().Since(50000).Count(); got != 0 {
		t.Errorf("empty window = %d", got)
	}
	// Composes with other filters.
	if got := s.Query().Since(9000).Severity(Sev1).Count(); got != 1 {
		t.Errorf("windowed severity = %d", got)
	}
}
