package sev

import (
	"dcnr/internal/obs/journal"
)

// Provenance is the causal-chain summary a journal attaches to one SEV
// report: which journal records explain the incident and how long the
// fault spent in each lifecycle phase. It lives in a side store keyed by
// report ID — Report's JSON serialization is a stable external format and
// does not change when provenance is attached.
//
// This is the journal→SEV bridge: a daemon serving the SEV database can
// answer "why did this incident happen" from the store alone, without
// re-reading the journal stream.
type Provenance struct {
	// SEV is the report ID this provenance explains.
	SEV int `json:"sev"`
	// Records is the incident's causal chain, root (fault_raised) first.
	Records []journal.ID `json:"records"`
	// FaultRaisedHours is the simulation time the root fault occurred.
	FaultRaisedHours float64 `json:"fault_raised_hours"`
	// DetectionHours is the raised→detected lag.
	DetectionHours float64 `json:"detection_hours"`
	// Escalated reports whether the incident went through the automated
	// remediation engine before escalating (false for pre-automation
	// incidents, which went straight from detection to a SEV).
	Escalated bool `json:"escalated"`
	// ResolutionHours is the incident's resolution time.
	ResolutionHours float64 `json:"resolution_hours"`
}

// SetProvenance attaches provenance to the report with the given ID.
// Unknown IDs are rejected so a stale journal cannot seed orphan entries.
func (s *Store) SetProvenance(id int, p Provenance) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		return false
	}
	if s.provenance == nil {
		s.provenance = make(map[int]Provenance)
	}
	s.provenance[id] = p
	return true
}

// Provenance returns the causal provenance attached to the report with
// the given ID, if any.
func (s *Store) Provenance(id int) (Provenance, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.provenance[id]
	return p, ok
}

// AttachJournal walks every closed incident in the journal index and
// attaches its causal chain to the matching SEV report in the store.
// Incidents whose Ref is unknown to the store (a journal from a different
// run) are skipped. Returns how many reports gained provenance.
func AttachJournal(s *Store, x *journal.Index) int {
	n := 0
	for _, closed := range x.Incidents() {
		if closed.Ref == 0 {
			continue
		}
		chain := x.Chain(closed.ID)
		p := Provenance{
			SEV:             int(closed.Ref),
			ResolutionHours: closed.Aux,
		}
		var raised, detected float64
		for _, r := range chain {
			p.Records = append(p.Records, r.ID)
			switch r.Kind {
			case journal.FaultRaised:
				raised = r.Time
			case journal.FaultDetected:
				detected = r.Time
			case journal.Escalated:
				p.Escalated = true
			}
		}
		p.FaultRaisedHours = raised
		p.DetectionHours = detected - raised
		if s.SetProvenance(int(closed.Ref), p) {
			n++
		}
	}
	return n
}
