package des

import (
	"math"
	"testing"
	"testing/quick"

	"dcnr/internal/obs"
	"dcnr/internal/simrand"
)

func TestRunOrdersEvents(t *testing.T) {
	var s Simulator
	var order []int
	s.After(3, func(float64) { order = append(order, 3) })
	s.After(1, func(float64) { order = append(order, 1) })
	s.After(2, func(float64) { order = append(order, 2) })
	s.Run(10)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 10 {
		t.Errorf("Now = %v, want 10", s.Now())
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	var s Simulator
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.After(1, func(float64) { order = append(order, i) })
	}
	s.Run(2)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	var s Simulator
	s.After(5, func(float64) {})
	s.Run(10)
	if _, err := s.Schedule(3, func(float64) {}); err != ErrPast {
		t.Errorf("Schedule in the past: err = %v, want ErrPast", err)
	}
}

func TestEventsBeyondUntilDoNotFire(t *testing.T) {
	var s Simulator
	fired := false
	s.After(5, func(float64) { fired = true })
	s.Run(4)
	if fired {
		t.Error("event at t=5 fired during Run(4)")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.Run(5) // boundary: events exactly at until fire
	if !fired {
		t.Error("event at t=5 did not fire during Run(5)")
	}
}

func TestCancel(t *testing.T) {
	var s Simulator
	fired := false
	e := s.After(1, func(float64) { fired = true })
	if !s.Cancel(e) {
		t.Error("Cancel returned false for pending event")
	}
	if s.Cancel(e) {
		t.Error("double Cancel returned true")
	}
	s.Run(2)
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Cancel(Handle{}) {
		t.Error("Cancel of zero Handle returned true")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	var s Simulator
	e := s.After(1, func(float64) {})
	s.Run(2)
	if s.Cancel(e) {
		t.Error("Cancel returned true for already-fired event")
	}
}

func TestHalt(t *testing.T) {
	var s Simulator
	count := 0
	s.After(1, func(float64) { count++; s.Halt() })
	s.After(2, func(float64) { count++ })
	s.Run(10)
	if count != 1 {
		t.Errorf("count = %d, want 1 (halted after first event)", count)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestScheduleDuringRun(t *testing.T) {
	var s Simulator
	var times []float64
	s.After(1, func(now float64) {
		times = append(times, now)
		s.After(1, func(now float64) { times = append(times, now) })
	})
	s.Run(10)
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Errorf("times = %v", times)
	}
}

func TestEvery(t *testing.T) {
	var s Simulator
	var ticks []float64
	stop := s.Every(0.5, 1, func(now float64) { ticks = append(ticks, now) })
	s.After(3.6, func(float64) { stop() })
	s.Run(10)
	want := []float64{0.5, 1.5, 2.5, 3.5}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	var s Simulator
	s.Every(0, 0, func(float64) {})
}

func TestStep(t *testing.T) {
	var s Simulator
	n := 0
	s.After(1, func(float64) { n++ })
	s.After(2, func(float64) { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first Step: n = %d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second Step: n = %d", n)
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestFiredCounter(t *testing.T) {
	var s Simulator
	for i := 0; i < 7; i++ {
		s.After(float64(i), func(float64) {})
	}
	s.Run(100)
	if s.Fired() != 7 {
		t.Errorf("Fired = %d, want 7", s.Fired())
	}
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	var s Simulator
	fired := false
	s.After(-5, func(float64) { fired = true })
	s.Run(0)
	if !fired {
		t.Error("negative-delay event did not fire at t=0")
	}
}

func TestYearConversions(t *testing.T) {
	if y := Year(0, 2011); y != 2011 {
		t.Errorf("Year(0) = %d", y)
	}
	if y := Year(HoursPerYear-1, 2011); y != 2011 {
		t.Errorf("Year(last hour of 2011) = %d", y)
	}
	if y := Year(HoursPerYear, 2011); y != 2012 {
		t.Errorf("Year(first hour of 2012) = %d", y)
	}
	if ys := YearStart(2015, 2011); ys != 4*HoursPerYear {
		t.Errorf("YearStart(2015) = %v", ys)
	}
	if y := Year(-10, 2011); y != 2011 {
		t.Errorf("Year(-10) = %d, want clamp to epoch", y)
	}
}

func TestEventOrderProperty(t *testing.T) {
	// Whatever random times we schedule, firing order is non-decreasing.
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		var s Simulator
		var fired []float64
		for i := 0; i < 200; i++ {
			s.After(r.Float64()*100, func(now float64) { fired = append(fired, now) })
		}
		s.Run(100)
		if len(fired) != 200 {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentedRunRecordsMetricsAndTrace(t *testing.T) {
	var s Simulator
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	s.Instrument(reg, tr)
	const n = 300
	for i := 0; i < n; i++ {
		s.After(float64(i), func(float64) {})
	}
	s.Run(1000)
	snap := reg.Snapshot()
	if got := snap.Counters["des_events_fired_total"]; got != n {
		t.Errorf("des_events_fired_total = %d, want %d", got, n)
	}
	if got := snap.Gauges["des_queue_depth"]; got != 0 {
		t.Errorf("final des_queue_depth = %v, want 0", got)
	}
	if got := snap.Gauges["des_sim_hours"]; got != 1000 {
		t.Errorf("des_sim_hours = %v, want 1000 (clock synced exactly at Run exit)", got)
	}
	if got := snap.Histograms["des_event_wall_seconds"].Count; got != n {
		t.Errorf("event histogram count = %d, want %d", got, n)
	}
	// One span per event plus a queue-depth sample every 256 events.
	spans := 0
	samples := 0
	for _, e := range tr.Events() {
		switch e.Phase {
		case "X":
			spans++
			if e.Args["sim_hours"] == nil {
				t.Fatal("des span missing sim_hours arg")
			}
		case "C":
			samples++
		}
	}
	if spans != n {
		t.Errorf("trace spans = %d, want %d", spans, n)
	}
	if samples != n/256 {
		t.Errorf("counter samples = %d, want %d", samples, n/256)
	}
}

func TestInstrumentMetricsOnlyAndStep(t *testing.T) {
	var s Simulator
	reg := obs.NewRegistry()
	s.Instrument(reg, nil) // metrics without tracing
	s.After(1, func(float64) {})
	s.After(2, func(float64) {})
	s.Step()
	if got := reg.Counter("des_events_fired_total").Value(); got != 1 {
		t.Errorf("fired after Step = %d, want 1", got)
	}
	if got := reg.Gauge("des_queue_depth").Value(); got != 1 {
		t.Errorf("queue depth = %v, want 1", got)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	// One long-lived simulator recycled with Reset between iterations —
	// the Monte-Carlo campaign pattern the pooled kernel is built for.
	// Steady-state allocs/op is the pooling gate CI smoke-checks.
	r := simrand.New(1)
	times := make([]float64, 10000)
	for i := range times {
		times[i] = r.Float64() * 1000
	}
	var s Simulator
	// One untimed iteration grows the pool slabs and heap arrays so the
	// counted loop measures the recycled steady state (0 allocs/op even at
	// short -benchtime).
	benchIterate(&s, times)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchIterate(&s, times)
	}
}

func benchIterate(s *Simulator, times []float64) {
	s.Reset()
	for _, at := range times {
		s.After(at, func(float64) {})
	}
	s.Run(1000)
}

func BenchmarkObsScheduleAndRunInstrumented(b *testing.B) {
	// The metrics-only counterpart of BenchmarkScheduleAndRun: the delta is
	// the kernel-level instrumentation overhead bench_obs.sh tracks.
	r := simrand.New(1)
	times := make([]float64, 10000)
	for i := range times {
		times[i] = r.Float64() * 1000
	}
	reg := obs.NewRegistry()
	var s Simulator
	s.Instrument(reg, nil)
	benchIterate(&s, times)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchIterate(&s, times)
	}
}

func TestRunNaNUntilRunsNothing(t *testing.T) {
	// Regression: NaN poisons every `at > until` comparison, so the old
	// loop drained the whole queue. NaN must run nothing past now.
	var s Simulator
	fired := 0
	s.After(1, func(float64) { fired++ })
	s.After(2, func(float64) { fired++ })
	s.Run(math.NaN())
	if fired != 0 {
		t.Errorf("Run(NaN) fired %d events, want 0", fired)
	}
	if s.Pending() != 2 {
		t.Errorf("Pending after Run(NaN) = %d, want 2", s.Pending())
	}
	if s.Now() != 0 {
		t.Errorf("Now after Run(NaN) = %v, want 0 (clock untouched)", s.Now())
	}
	s.Run(10)
	if fired != 2 {
		t.Errorf("queue unusable after Run(NaN): fired = %d, want 2", fired)
	}
}

func TestScheduleNaNRejected(t *testing.T) {
	var s Simulator
	if _, err := s.Schedule(math.NaN(), func(float64) {}); err != ErrPast {
		t.Errorf("Schedule(NaN): err = %v, want ErrPast", err)
	}
	fired := false
	s.After(math.NaN(), func(float64) { fired = true })
	s.Run(1)
	if !fired {
		t.Error("After(NaN) did not clamp to an immediate event")
	}
}

func TestEveryStopInsideHandler(t *testing.T) {
	// Regression: stop() called from inside the tick handler used to let
	// the handler reschedule the next tick anyway, leaving a stale event.
	var s Simulator
	ticks := 0
	var stop func()
	stop = s.Every(1, 1, func(float64) {
		ticks++
		if ticks == 3 {
			stop()
		}
	})
	s.Run(100)
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3 (stop inside handler must halt the chain)", ticks)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0 (no stale tick left in queue)", s.Pending())
	}
}

func TestCancelStaleHandleAfterRecycle(t *testing.T) {
	// Pooling hazard: after an event fires, its node returns to the free
	// list and is re-armed for the next Schedule. A handle to the old life
	// must not cancel the new occupant.
	var s Simulator
	old := s.After(1, func(float64) {})
	s.Run(2) // fires; node recycled to free list
	fired := false
	s.After(1, func(float64) { fired = true }) // reuses the node
	if s.Cancel(old) {
		t.Error("stale handle cancelled a recycled event")
	}
	s.Run(5)
	if !fired {
		t.Error("recycled event did not fire (stale cancel hit it)")
	}
}

func TestCancelFromInsideFiringHandler(t *testing.T) {
	// Self-cancel while firing must report false (the event is no longer
	// pending) and must not corrupt the free list by double-releasing.
	var s Simulator
	var self Handle
	otherFired := false
	selfCancel := true
	self = s.After(1, func(float64) { selfCancel = s.Cancel(self) })
	s.After(2, func(float64) { otherFired = true })
	s.Run(10)
	if selfCancel {
		t.Error("Cancel of the currently-firing event returned true")
	}
	if !otherFired {
		t.Error("event after a self-cancelling handler did not fire")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
}

func TestResetInvalidatesHandles(t *testing.T) {
	var s Simulator
	fired := 0
	old := s.After(5, func(float64) { fired++ })
	s.After(1, func(float64) { fired++ })
	s.Run(2)
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Fired() != 0 {
		t.Fatalf("Reset left state: now=%v pending=%d fired=%d", s.Now(), s.Pending(), s.Fired())
	}
	reused := false
	s.After(1, func(float64) { reused = true }) // re-arms a pooled node
	if s.Cancel(old) {
		t.Error("pre-Reset handle cancelled a post-Reset event")
	}
	s.Run(10)
	if !reused {
		t.Error("post-Reset event did not fire")
	}
	if fired != 1 {
		t.Errorf("pre-Reset events fired %d times, want 1 (only the one before Reset)", fired)
	}
}

// checkHeapInvariant verifies the min-heap property over the slot slab and
// that live-node accounting matches the pending slots actually in the heap.
func checkHeapInvariant(t *testing.T, s *Simulator) {
	t.Helper()
	if len(s.heapKeys) != len(s.heapMeta) {
		t.Fatalf("key row and meta row diverged: %d vs %d", len(s.heapKeys), len(s.heapMeta))
	}
	less := func(i, j int) bool {
		if s.heapKeys[i] != s.heapKeys[j] {
			return s.heapKeys[i] < s.heapKeys[j]
		}
		return s.heapMeta[i].seq < s.heapMeta[j].seq
	}
	for i := 1; i < len(s.heapKeys); i++ {
		p := (i - 1) / heapAry
		if less(i, p) {
			t.Fatalf("heap invariant broken at %d: child (%d,%d) < parent (%d,%d)",
				i, s.heapKeys[i], s.heapMeta[i].seq, s.heapKeys[p], s.heapMeta[p].seq)
		}
	}
	livePending := 0
	for _, sm := range s.heapMeta {
		nd := &s.nodes[sm.id]
		if nd.gen == sm.gen && nd.pending {
			livePending++
		}
	}
	if livePending != s.live {
		t.Fatalf("live = %d but heap holds %d pending slots", s.live, livePending)
	}
}

func TestHeapInvariantUnderChurn(t *testing.T) {
	// Heavy interleaved schedule/cancel/step churn, checking the heap
	// invariant and pool accounting at every step.
	r := simrand.New(42)
	var s Simulator
	var handles []Handle
	for i := 0; i < 2000; i++ {
		switch {
		case r.Bool(0.5):
			handles = append(handles, s.After(r.Float64()*100, func(float64) {}))
		case r.Bool(0.5) && len(handles) > 0:
			s.Cancel(handles[r.Intn(len(handles))])
		default:
			s.Step()
		}
		checkHeapInvariant(t, &s)
	}
	s.Run(math.Inf(1))
	if s.Pending() != 0 {
		t.Errorf("Pending after drain = %d, want 0", s.Pending())
	}
	checkHeapInvariant(t, &s)
}

func TestScheduleCancelInterleavingProperty(t *testing.T) {
	// Random interleavings of schedules and cancels: every event fires at
	// most once, cancelled events never fire, firing order stays sorted.
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		var s Simulator
		type tracked struct {
			ev        Handle
			cancelled bool
			fired     int
		}
		items := make([]*tracked, 0, 100)
		for i := 0; i < 100; i++ {
			it := &tracked{}
			it.ev = s.After(r.Float64()*50, func(float64) { it.fired++ })
			items = append(items, it)
			// Randomly cancel an earlier event.
			if r.Bool(0.3) {
				victim := items[r.Intn(len(items))]
				if s.Cancel(victim.ev) {
					victim.cancelled = true
				}
			}
		}
		s.Run(100)
		for _, it := range items {
			if it.cancelled && it.fired != 0 {
				return false
			}
			if !it.cancelled && it.fired != 1 {
				return false
			}
		}
		return s.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleHookGridCrossing(t *testing.T) {
	var s Simulator
	var grid []float64
	s.SetSampleHook(10, func(now float64) { grid = append(grid, now) })
	for _, at := range []float64{3, 9.5, 21, 45, 45.5} {
		if _, err := s.Schedule(at, func(float64) {}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(100)
	// The event at 21 crosses grid points 10 and 20; 45 crosses 30 and 40.
	want := []float64{10, 20, 30, 40}
	if len(grid) != len(want) {
		t.Fatalf("grid samples = %v, want %v", grid, want)
	}
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("grid samples = %v, want %v", grid, want)
		}
	}
}

func TestSampleHookDetachAndReset(t *testing.T) {
	var s Simulator
	calls := 0
	s.SetSampleHook(5, func(float64) { calls++ })
	s.Schedule(7, func(float64) {})
	s.Run(10)
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	s.Reset()
	s.Schedule(6, func(float64) {})
	s.Run(10)
	if calls != 2 {
		t.Fatalf("after Reset: calls = %d, want 2 (grid restarts at period)", calls)
	}
	s.SetSampleHook(0, nil)
	s.Schedule(11, func(float64) {})
	s.Run(20)
	if calls != 2 {
		t.Fatalf("after detach: calls = %d, want 2", calls)
	}
}

func TestSampleHookMidRunAttach(t *testing.T) {
	var s Simulator
	s.Schedule(12, func(float64) {})
	s.Run(15) // clock at 15
	var grid []float64
	s.SetSampleHook(10, func(now float64) { grid = append(grid, now) })
	s.Schedule(19, func(float64) {})
	s.Schedule(21, func(float64) {})
	s.Run(30)
	// First grid point strictly after attach time 15 is 20.
	if len(grid) != 1 || grid[0] != 20 {
		t.Fatalf("grid = %v, want [20]", grid)
	}
}
