// Package des is a small discrete-event simulation kernel.
//
// Time is a float64 number of hours since the simulation epoch; the domain
// packages interpret the epoch as 00:00 on January 1 of the first simulated
// year. Events scheduled for the same instant fire in scheduling order
// (deterministic FIFO tie-breaking), which keeps whole-simulation runs
// reproducible bit-for-bit.
//
// # Memory layout
//
// The kernel is allocation-free on the hot path. Scheduling an event costs
// zero heap allocations at steady state: event state lives in a pooled
// node slab ([]node, recycled through a free list), and the priority queue
// is a struct-of-arrays 4-ary heap — a key row of order-preserving time
// bit patterns ([]uint64) and a parallel metadata row ([]slotMeta) — so
// heap comparisons are single integer compares that never chase a pointer.
// Cancellation is lazy: a cancelled event's slot stays in the queue and is
// discarded when it surfaces, so no sift work or per-swap index
// maintenance happens at cancel time.
//
// Recycling nodes makes pointer identity meaningless, so Schedule returns
// a value-type Handle carrying the node's generation; Cancel on a stale
// handle (the node since fired, was cancelled, or now belongs to a newer
// event) compares generations and safely reports false.
package des

import (
	"context"
	"errors"
	"log/slog"
	"math"
	"time"

	"dcnr/internal/obs"
)

// Handler is the action an event performs when it fires.
type Handler func(now float64)

// Handle identifies a scheduled event so it can be cancelled. It is a
// small value type; the zero Handle is valid and cancels nothing. Handles
// stay safe after the event fires, is cancelled, or its node is recycled
// for a newer event: the generation check in Cancel turns every stale use
// into a no-op.
type Handle struct {
	at  float64
	id  int32
	gen uint32
}

// Time returns the instant the event was scheduled for.
func (h Handle) Time() float64 { return h.at }

// The priority queue is struct-of-arrays: heapKeys holds the primary sort
// key (the event time's IEEE-754 bit pattern — for the non-negative times
// the kernel admits, float order and unsigned bit order coincide, so the
// common comparison is one uint64 compare), and heapMeta carries the
// FIFO tie-break seq plus the node id/gen that resolve the handler and
// detect lazily-cancelled ghosts. Splitting them keeps the pop-side
// min-child scan inside a 32-byte key row per level instead of dragging
// 96 bytes of metadata through the cache.

// keyOf converts a non-negative event time to its order-preserving
// integer key.
func keyOf(at float64) uint64 { return math.Float64bits(at) }

// slotMeta is the per-slot payload riding alongside the key.
type slotMeta struct {
	seq uint64
	id  int32
	gen uint32
}

// node is the pooled per-event state: the handler, the generation that
// validates handles, and whether the event is still pending.
type node struct {
	handler Handler
	gen     uint32
	pending bool
}

// Simulator owns the event queue and the virtual clock. The zero value is a
// simulator at time 0 with an empty queue, ready to use.
type Simulator struct {
	now      float64
	seq      uint64
	heapKeys []uint64
	heapMeta []slotMeta
	nodes    []node
	free     []int32
	live     int // pending (non-cancelled) events in the queue
	fired    uint64
	halted   bool

	// Telemetry, attached by Instrument. All fields are nil (no-op) by
	// default so the uninstrumented hot loop pays nothing.
	mFired   *obs.Counter
	gQueue   *obs.Gauge
	gSimTime *obs.Gauge
	hEvent   *obs.HistogramBatch
	tracer   *obs.Tracer
	ring     *obs.SpanRing
	logger   *slog.Logger
	logDebug bool

	// lastTick is the wall-clock cursor of the instrumented loop: each
	// timing point reads the clock once and takes the previous reading as
	// its start, so per-event timing costs one clock read instead of a
	// Now/Since pair. The measured duration therefore covers kernel
	// dispatch plus the handler — the dispatch share is tens of
	// nanoseconds, noise against any real handler. In metrics-only mode
	// (no trace ring) the cursor advances once per flush window instead of
	// per event, and the histogram receives the window's per-event
	// average — clock reads stop being a per-event cost at all.
	lastTick   time.Time
	firedDelta int64 // events fired since the last metrics flush
	winEvents  int64 // events in the current metrics-only timing window

	// syncHooks run at every telemetry sync point (Run/Step exit) so
	// batched side recorders — the causal journal's lanes above all —
	// can publish their staged tails whenever the kernel publishes its
	// own. See AddSyncHook.
	syncHooks []func()

	// Sampling hook (SetSampleHook): sampleFn is invoked at every
	// multiple of sampleEvery the clock crosses, with the grid time —
	// the timeline sampler's cadence driver. sampleNext is the first
	// grid point not yet sampled; a nil sampleFn costs the hot loop one
	// pointer check per event.
	sampleEvery float64
	sampleNext  float64
	sampleFn    func(now float64)
}

// metricsFlushMask throttles shared-metric publication: the fired counter,
// the event histogram, and the two gauges are staged locally and flushed
// every 64 events mid-run (plenty for live scrape freshness) and exactly
// on every Run/Step exit, so final snapshots are precise while the hot
// loop pays no atomics at all on most events.
const metricsFlushMask = 63

// Instrument attaches telemetry to the simulator. Metrics registered on
// reg: des_events_fired_total (counter), des_queue_depth and des_sim_hours
// (gauges), and des_event_wall_seconds (histogram of per-event wall cost,
// kernel dispatch included; with tracing attached each event is timed
// individually, metrics-only mode times 64-event windows and attributes
// the per-event average). All four are staged in the kernel and published
// every 64 events and exactly at Run/Step exit — concurrent scrapers see
// totals at most 64 events stale mid-run. When tr is non-nil,
// every fired event additionally records a wall-clock span carrying the
// simulation time and queue depth into a batched ring buffer (flushed on
// Run/Step exit), plus periodic des_queue_depth counter samples — the
// sim-time-vs-wall-time view the trace viewer renders. Either argument may
// be nil.
func (s *Simulator) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	if reg != nil {
		s.mFired = reg.Counter("des_events_fired_total")
		s.gQueue = reg.Gauge("des_queue_depth")
		s.gSimTime = reg.Gauge("des_sim_hours")
		s.hEvent = reg.Histogram("des_event_wall_seconds",
			[]float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}).Batch()
	}
	s.tracer = tr
	// One numeric arg per span: the sim clock, correlating wall position
	// with simulated time. Queue depth is deliberately NOT an arg — the
	// counter samples already chart it, and on a ~150k-span trace every
	// extra arg key is megabytes of file.
	s.ring = tr.Ring(obs.WallPID, 1, "des", "des.event", "sim_hours")
}

// SetLogger attaches a structured logger to the kernel: every fired event
// logs a debug record carrying the simulation clock and queue depth. The
// debug-level gate is evaluated once here, so an info-level logger costs
// the hot loop nothing. Pair with obs.NewSimHandler so records carry the
// wall clock too (slog stamps it internally — the kernel itself never
// reads wall time for simulation state). Nil detaches.
func (s *Simulator) SetLogger(l *slog.Logger) {
	s.logger = l
	s.logDebug = l != nil && l.Enabled(context.Background(), slog.LevelDebug)
}

// alloc takes a node from the free list (or grows the slab) and arms it
// with h. The generation bump invalidates any handle still pointing at the
// node's previous life.
//
//hot:noalloc
func (s *Simulator) alloc(h Handler) (int32, uint32) {
	var id int32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.nodes = append(s.nodes, node{})
		id = int32(len(s.nodes) - 1)
	}
	nd := &s.nodes[id]
	nd.gen++
	nd.handler = h
	nd.pending = true
	return id, nd.gen
}

// release marks the node consumed and returns it to the free list. The
// caller has already read the handler out.
//
//hot:noalloc
func (s *Simulator) release(id int32) {
	nd := &s.nodes[id]
	nd.pending = false
	nd.handler = nil
	s.free = append(s.free, id)
}

// heapAry is the heap branching factor. A 4-ary heap halves the tree depth
// of the pop-side sift (the DES kernel's single hottest loop) at the price
// of extra comparisons per level — and the four child keys are 32
// contiguous bytes, a half cache line per level. The pop order is
// identical for any arity: (key, seq) is a strict total order (seq is
// unique), so the heap shape never affects event order.
const heapAry = 4

// push inserts a queue entry, sifting up with inline comparisons.
//
//hot:noalloc
func (s *Simulator) push(key uint64, m slotMeta) {
	s.heapKeys = append(s.heapKeys, key)
	s.heapMeta = append(s.heapMeta, m)
	keys, meta := s.heapKeys, s.heapMeta
	i := len(keys) - 1
	for i > 0 {
		p := (i - 1) / heapAry
		pk := keys[p]
		if key > pk || (key == pk && m.seq > meta[p].seq) {
			break
		}
		keys[i], meta[i] = pk, meta[p]
		i = p
	}
	keys[i], meta[i] = key, m
}

// popRoot removes the minimum entry, sifting the last entry down the hole.
//
//hot:noalloc
func (s *Simulator) popRoot() {
	n := len(s.heapKeys) - 1
	lk, lm := s.heapKeys[n], s.heapMeta[n]
	s.heapKeys = s.heapKeys[:n]
	s.heapMeta = s.heapMeta[:n]
	if n == 0 {
		return
	}
	keys, meta := s.heapKeys, s.heapMeta
	i := 0
	for {
		c := heapAry*i + 1
		if c >= n {
			break
		}
		end := c + heapAry
		if end > n {
			end = n
		}
		// Min-child scan on the key row alone; seq breaks the (rare for
		// float times) exact key ties.
		m := c
		mk := keys[c]
		for j := c + 1; j < end; j++ {
			jk := keys[j]
			if jk < mk || (jk == mk && meta[j].seq < meta[m].seq) {
				m, mk = j, jk
			}
		}
		if mk > lk || (mk == lk && meta[m].seq > lm.seq) {
			break
		}
		keys[i], meta[i] = mk, meta[m]
		i = m
	}
	keys[i], meta[i] = lk, lm
}

// logFired emits the per-event debug record. Kept outside fire's
// //hot:noalloc region: slog attribute construction allocates, and the
// logDebug gate means this only runs with debug logging enabled.
func (s *Simulator) logFired(seq uint64) {
	s.logger.Debug("des event fired",
		slog.Uint64("seq", seq),
		slog.Int("pending", s.live),
		obs.SimHours(s.now))
}

// SetSampleHook registers fn to run each time the simulation clock
// reaches or crosses a multiple of period (in hours), called with the
// grid time k·period rather than the event time — so sampled series land
// on a fixed cadence grid, deterministic for a fixed seed no matter how
// events fall between grid points. The hook runs on the simulation
// goroutine, from inside the event loop, before the crossing event's
// handler: it must not allocate, not schedule, and not read the wall
// clock (the timeline sampler is the intended caller). Periods ≤ 0 or a
// nil fn detach the hook.
//
// Grid points are only visited when an event crosses them: a quiet
// stretch with no events samples nothing, which is exactly right for
// delta-style samplers — with no events, no instrumented value changed.
func (s *Simulator) SetSampleHook(period float64, fn func(now float64)) {
	if fn == nil || !(period > 0) {
		s.sampleFn = nil
		return
	}
	s.sampleEvery = period
	s.sampleNext = (math.Floor(s.now/period) + 1) * period
	s.sampleFn = fn
}

// runSamples visits every unsampled grid point up to at, in order.
//
//hot:noalloc
func (s *Simulator) runSamples(at float64) {
	for s.sampleNext <= at {
		s.sampleFn(s.sampleNext)
		s.sampleNext += s.sampleEvery
	}
}

// fire executes one event's handler at time at, with telemetry when
// attached.
//
//hot:noalloc
func (s *Simulator) fire(at float64, seq uint64, h Handler) {
	s.now = at
	s.fired++
	if s.sampleFn != nil && at >= s.sampleNext {
		s.runSamples(at)
	}
	if s.logDebug {
		s.logFired(seq)
	}
	if s.mFired == nil && s.ring == nil {
		h(at)
		return
	}
	h(at)
	if s.ring == nil {
		// Metrics-only: no per-event clock read. Events are counted now
		// and timed in windows — closeTimingWindow reads the clock once
		// per flush window and attributes the per-event average.
		s.firedDelta++
		s.winEvents++
		if s.fired&metricsFlushMask == 0 {
			s.closeTimingWindow()
			s.flushMetrics()
		}
		return
	}
	// Traced: one clock read per event; the span runs from the previous
	// reading (set at Run/Step entry, advanced here) to now.
	tick := time.Now() //lint:allow simdeterminism wall-clock telemetry, not simulation state
	wall := tick.Sub(s.lastTick)
	if s.mFired != nil {
		s.firedDelta++
		s.hEvent.Observe(wall.Seconds())
		if s.fired&metricsFlushMask == 0 {
			s.flushMetrics()
		}
	}
	s.ring.RecordWall(-1, s.lastTick, wall, s.now, 0, 0)
	// A queue-depth sample every 256 events keeps the counter chart
	// readable without drowning the trace in samples.
	if s.fired%256 == 0 {
		s.tracer.CounterSample("des_queue_depth", float64(s.live))
	}
	s.lastTick = tick
}

// closeTimingWindow ends the current metrics-only timing window: one clock
// read covers every event since the last close, and each gets the window's
// per-event average in the wall histogram.
func (s *Simulator) closeTimingWindow() {
	tick := time.Now() //lint:allow simdeterminism wall-clock telemetry, not simulation state
	if s.winEvents > 0 {
		avg := tick.Sub(s.lastTick).Seconds() / float64(s.winEvents)
		s.hEvent.ObserveN(avg, s.winEvents)
		s.winEvents = 0
	}
	s.lastTick = tick
}

// flushMetrics publishes the staged counter, histogram, and gauge values
// to the shared registry metrics.
func (s *Simulator) flushMetrics() {
	s.mFired.Add(s.firedDelta)
	s.firedDelta = 0
	s.hEvent.Flush()
	s.gQueue.Set(float64(s.live))
	s.gSimTime.Set(s.now)
}

// startTelemetry resets the wall-clock cursor at Run/Step entry.
func (s *Simulator) startTelemetry() {
	if s.mFired != nil || s.ring != nil {
		s.lastTick = time.Now() //lint:allow simdeterminism wall-clock telemetry, not simulation state
		s.winEvents = 0
	}
}

// syncTelemetry brings the staged telemetry exact and publishes the span
// ring — called on every Run/Step exit, outside the hot loop.
func (s *Simulator) syncTelemetry() {
	if s.mFired != nil {
		if s.ring == nil {
			s.closeTimingWindow()
		}
		s.flushMetrics()
	}
	s.ring.Flush()
	for _, f := range s.syncHooks {
		f()
	}
}

// AddSyncHook registers f to run at every telemetry sync point — each
// Run/Step exit, outside the hot loop. Batched recorders riding along
// with the simulation (the faults driver's journal lanes) register their
// flush here so anything staged becomes reader-visible exactly when the
// kernel's own staged telemetry does. Hooks run on the simulation
// goroutine in registration order.
func (s *Simulator) AddSyncHook(f func()) {
	s.syncHooks = append(s.syncHooks, f)
}

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("des: schedule in the past")

// Now returns the current virtual time in hours.
func (s *Simulator) Now() float64 { return s.now }

// Fired reports how many events have executed.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are waiting in the queue. Cancelled
// events are not counted, even while their ghost slots still occupy the
// underlying heap.
func (s *Simulator) Pending() int { return s.live }

// Schedule queues h to fire at absolute time at. It returns the Handle
// (usable with Cancel) or ErrPast if at precedes the current time.
//
//hot:noalloc
func (s *Simulator) Schedule(at float64, h Handler) (Handle, error) {
	if at < s.now || math.IsNaN(at) {
		return Handle{}, ErrPast
	}
	id, gen := s.alloc(h)
	s.push(keyOf(at), slotMeta{seq: s.seq, id: id, gen: gen})
	s.seq++
	s.live++
	return Handle{at: at, id: id, gen: gen}, nil
}

// After queues h to fire delay hours from now. Negative delays are clamped
// to zero so callers can pass small jittered values safely.
//
//hot:noalloc
func (s *Simulator) After(delay float64, h Handler) Handle {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	e, _ := s.Schedule(s.now+delay, h)
	return e
}

// Cancel removes the event h identifies from the queue. It reports whether
// the event was still pending — false if it already fired, was cancelled,
// or h is stale (its node has been recycled for a newer event; the
// generation check makes such a cancel a safe no-op instead of killing the
// wrong event). The slot itself is discarded lazily when it reaches the
// queue root.
//
//hot:noalloc
func (s *Simulator) Cancel(h Handle) bool {
	if h.gen == 0 || h.id < 0 || int(h.id) >= len(s.nodes) {
		return false
	}
	nd := &s.nodes[h.id]
	if nd.gen != h.gen || !nd.pending {
		return false
	}
	s.release(h.id)
	s.live--
	return true
}

// Halt stops the run loop after the current event finishes.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events in order until the queue is empty, an event beyond
// until is reached, or Halt is called. The clock finishes at until (or at
// the halt time). Events scheduled exactly at until do fire. A NaN until
// runs nothing: no comparison against NaN can admit an event, so the queue
// and clock are left untouched.
//
//hot:noalloc
func (s *Simulator) Run(until float64) {
	if math.IsNaN(until) {
		return
	}
	s.halted = false
	s.startTelemetry()
	for len(s.heapKeys) > 0 && !s.halted {
		sm := s.heapMeta[0]
		nd := &s.nodes[sm.id]
		if nd.gen != sm.gen || !nd.pending {
			// Ghost of a cancelled (or recycled) event: discard.
			s.popRoot()
			continue
		}
		at := math.Float64frombits(s.heapKeys[0])
		if at > until {
			break
		}
		s.popRoot()
		h := nd.handler
		nd.pending = false
		nd.handler = nil
		s.live--
		s.fire(at, sm.seq, h)
		// Release after the handler: a Schedule inside it must not reuse
		// this node while the firing is still logically alive.
		s.free = append(s.free, sm.id)
	}
	if !s.halted && s.now < until {
		s.now = until
	}
	s.syncTelemetry()
}

// Step executes exactly one event if any is pending and reports whether
// one fired. Ghost slots of cancelled events are discarded along the way.
//
//hot:noalloc
func (s *Simulator) Step() bool {
	s.startTelemetry()
	for len(s.heapKeys) > 0 {
		at := math.Float64frombits(s.heapKeys[0])
		sm := s.heapMeta[0]
		nd := &s.nodes[sm.id]
		s.popRoot()
		if nd.gen != sm.gen || !nd.pending {
			continue
		}
		h := nd.handler
		nd.pending = false
		nd.handler = nil
		s.live--
		s.fire(at, sm.seq, h)
		s.free = append(s.free, sm.id)
		s.syncTelemetry()
		return true
	}
	return false
}

// Reset returns the simulator to time zero with an empty queue, keeping
// the node slab, free list, and heap capacity for reuse — a long-lived
// simulator (or benchmark) pays the slab allocations once. Handles
// obtained before the Reset are invalidated: the next arm of each node
// bumps its generation, so a stale Cancel reports false instead of
// touching the new life. Telemetry attachments survive.
func (s *Simulator) Reset() {
	s.heapKeys = s.heapKeys[:0]
	s.heapMeta = s.heapMeta[:0]
	s.free = s.free[:0]
	for i := range s.nodes {
		nd := &s.nodes[i]
		nd.pending = false
		nd.handler = nil
		s.free = append(s.free, int32(i))
	}
	s.live = 0
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.halted = false
	if s.sampleFn != nil {
		s.sampleNext = s.sampleEvery
	}
}

// Every schedules h to fire repeatedly with the given period, starting at
// start, until the simulator stops running. The returned stop function
// cancels future firings; calling it from inside h itself stops the chain
// before the next tick is scheduled.
func (s *Simulator) Every(start, period float64, h Handler) (stop func()) {
	if period <= 0 {
		panic("des: Every with non-positive period")
	}
	var cur Handle
	stopped := false
	var tick Handler
	tick = func(now float64) {
		if stopped {
			return
		}
		h(now)
		if stopped {
			// stop() ran inside h: its Cancel found the current tick
			// already firing (nothing pending), so the reschedule below
			// would silently re-arm the chain. Bail before it does.
			return
		}
		cur = s.After(period, tick)
	}
	cur, _ = s.Schedule(start, tick)
	return func() {
		stopped = true
		s.Cancel(cur)
	}
}

// HoursPerYear is the calendar conversion used across the simulation: the
// study reports device-hours using 365-day years.
const HoursPerYear = 365 * 24

// Year converts an absolute simulation time to a year index (0-based) given
// the simulation epoch year, e.g. epochYear 2011 maps t=0 to 2011.
func Year(t float64, epochYear int) int {
	if t < 0 {
		t = 0
	}
	return epochYear + int(t/HoursPerYear)
}

// YearStart returns the simulation time at which the given calendar year
// begins.
func YearStart(year, epochYear int) float64 {
	return float64(year-epochYear) * HoursPerYear
}
