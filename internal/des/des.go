// Package des is a small discrete-event simulation kernel.
//
// Time is a float64 number of hours since the simulation epoch; the domain
// packages interpret the epoch as 00:00 on January 1 of the first simulated
// year. Events scheduled for the same instant fire in scheduling order
// (deterministic FIFO tie-breaking), which keeps whole-simulation runs
// reproducible bit-for-bit.
package des

import (
	"container/heap"
	"context"
	"errors"
	"log/slog"
	"math"
	"time"

	"dcnr/internal/obs"
)

// Handler is the action an event performs when it fires.
type Handler func(now float64)

// Event is a scheduled occurrence. It is returned by Schedule so callers can
// cancel it.
type Event struct {
	at      float64
	seq     uint64
	handler Handler
	index   int // heap index; -1 once removed
}

// Time returns the instant the event is scheduled for.
func (e *Event) Time() float64 { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the event queue and the virtual clock. The zero value is a
// simulator at time 0 with an empty queue, ready to use.
type Simulator struct {
	now    float64
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool

	// Telemetry, attached by Instrument. All fields are nil (no-op) by
	// default so the uninstrumented hot loop pays nothing.
	mFired   *obs.Counter
	gQueue   *obs.Gauge
	gSimTime *obs.Gauge
	hEvent   *obs.Histogram
	tracer   *obs.Tracer
	logger   *slog.Logger
	logDebug bool
}

// Instrument attaches telemetry to the simulator. Metrics registered on
// reg: des_events_fired_total (counter), des_queue_depth and des_sim_hours
// (gauges), and des_event_wall_seconds (histogram of per-event handler
// cost). When tr is non-nil, every fired event additionally records a
// wall-clock trace span carrying the simulation time and queue depth, plus
// periodic des_queue_depth counter samples — the sim-time-vs-wall-time
// view the trace viewer renders. Either argument may be nil.
func (s *Simulator) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	if reg != nil {
		s.mFired = reg.Counter("des_events_fired_total")
		s.gQueue = reg.Gauge("des_queue_depth")
		s.gSimTime = reg.Gauge("des_sim_hours")
		s.hEvent = reg.Histogram("des_event_wall_seconds",
			[]float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1})
	}
	s.tracer = tr
}

// SetLogger attaches a structured logger to the kernel: every fired event
// logs a debug record carrying the simulation clock and queue depth. The
// debug-level gate is evaluated once here, so an info-level logger costs
// the hot loop nothing. Pair with obs.NewSimHandler so records carry the
// wall clock too (slog stamps it internally — the kernel itself never
// reads wall time for simulation state). Nil detaches.
func (s *Simulator) SetLogger(l *slog.Logger) {
	s.logger = l
	s.logDebug = l != nil && l.Enabled(context.Background(), slog.LevelDebug)
}

// fire executes one popped event, with telemetry when attached.
func (s *Simulator) fire(next *Event) {
	s.now = next.at
	s.fired++
	if s.logDebug {
		s.logger.Debug("des event fired",
			slog.Uint64("seq", next.seq),
			slog.Int("pending", len(s.queue)),
			obs.SimHours(s.now))
	}
	if s.mFired == nil && s.tracer == nil {
		next.handler(s.now)
		return
	}
	start := time.Now() //lint:allow simdeterminism wall-clock telemetry, not simulation state
	next.handler(s.now)
	wall := time.Since(start) //lint:allow simdeterminism wall-clock telemetry, not simulation state
	if s.mFired != nil {
		s.mFired.Inc()
		s.gQueue.Set(float64(len(s.queue)))
		s.gSimTime.Set(s.now)
		s.hEvent.Observe(wall.Seconds())
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{
			Name:  "des.event",
			Cat:   "des",
			Phase: "X",
			TS:    s.tracer.Now() - float64(wall)/float64(time.Microsecond),
			Dur:   float64(wall) / float64(time.Microsecond),
			PID:   obs.WallPID,
			TID:   1,
			Args:  map[string]any{"sim_hours": s.now, "pending": len(s.queue)},
		})
		// A queue-depth sample every 256 events keeps the counter chart
		// readable without drowning the trace in samples.
		if s.fired%256 == 0 {
			s.tracer.CounterSample("des_queue_depth", float64(len(s.queue)))
		}
	}
}

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("des: schedule in the past")

// Now returns the current virtual time in hours.
func (s *Simulator) Now() float64 { return s.now }

// Fired reports how many events have executed.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are waiting in the queue.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues h to fire at absolute time at. It returns the Event
// (usable with Cancel) or ErrPast if at precedes the current time.
func (s *Simulator) Schedule(at float64, h Handler) (*Event, error) {
	if at < s.now || math.IsNaN(at) {
		return nil, ErrPast
	}
	e := &Event{at: at, seq: s.seq, handler: h}
	s.seq++
	heap.Push(&s.queue, e)
	return e, nil
}

// After queues h to fire delay hours from now. Negative delays are clamped
// to zero so callers can pass small jittered values safely.
func (s *Simulator) After(delay float64, h Handler) *Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	e, _ := s.Schedule(s.now+delay, h)
	return e
}

// Cancel removes e from the queue. It reports whether the event was still
// pending (false if it already fired or was cancelled).
func (s *Simulator) Cancel(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(s.queue) || s.queue[e.index] != e {
		return false
	}
	heap.Remove(&s.queue, e.index)
	return true
}

// Halt stops the run loop after the current event finishes.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events in order until the queue is empty, an event beyond
// until is reached, or Halt is called. The clock finishes at until (or at
// the halt time). Events scheduled exactly at until do fire.
func (s *Simulator) Run(until float64) {
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		next := s.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.fire(next)
	}
	if !s.halted && s.now < until {
		s.now = until
	}
}

// Step executes exactly one event if any is pending and reports whether one
// fired.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	next := heap.Pop(&s.queue).(*Event)
	s.fire(next)
	return true
}

// Every schedules h to fire repeatedly with the given period, starting at
// start, until the simulator stops running. The returned stop function
// cancels future firings.
func (s *Simulator) Every(start, period float64, h Handler) (stop func()) {
	if period <= 0 {
		panic("des: Every with non-positive period")
	}
	var cur *Event
	stopped := false
	var tick Handler
	tick = func(now float64) {
		if stopped {
			return
		}
		h(now)
		cur = s.After(period, tick)
	}
	cur, _ = s.Schedule(start, tick)
	return func() {
		stopped = true
		s.Cancel(cur)
	}
}

// HoursPerYear is the calendar conversion used across the simulation: the
// study reports device-hours using 365-day years.
const HoursPerYear = 365 * 24

// Year converts an absolute simulation time to a year index (0-based) given
// the simulation epoch year, e.g. epochYear 2011 maps t=0 to 2011.
func Year(t float64, epochYear int) int {
	if t < 0 {
		t = 0
	}
	return epochYear + int(t/HoursPerYear)
}

// YearStart returns the simulation time at which the given calendar year
// begins.
func YearStart(year, epochYear int) float64 {
	return float64(year-epochYear) * HoursPerYear
}
