package drill

import (
	"strings"
	"testing"

	"dcnr/internal/fleet"
	"dcnr/internal/routing"
	"dcnr/internal/simrand"
	"dcnr/internal/topology"
	"dcnr/internal/traffic"
)

func testRunner(t *testing.T) (*Runner, *topology.Network) {
	t.Helper()
	net, err := fleet.RepresentativeTopology()
	if err != nil {
		t.Fatal(err)
	}
	demands, err := traffic.Generate(net, traffic.Config{}, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(net, demands, DefaultCriteria())
	if err != nil {
		t.Fatal(err)
	}
	return r, net
}

func TestDeviceOutageScenario(t *testing.T) {
	_, net := testRunner(t)
	sc, err := DeviceOutage(net, topology.CSW, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Down) != 2 || !strings.Contains(sc.Name, "CSW") {
		t.Errorf("scenario = %+v", sc)
	}
	if _, err := DeviceOutage(net, topology.CSW, 0); err == nil {
		t.Error("zero-count outage accepted")
	}
	if _, err := DeviceOutage(net, topology.CSW, 10000); err == nil {
		t.Error("oversized outage accepted")
	}
}

func TestDataCenterDisconnectScenario(t *testing.T) {
	_, net := testRunner(t)
	sc, err := DataCenterDisconnect(net, "dc1")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Down) != 8 {
		t.Errorf("disconnect drill fails %d devices, want the 8 cores", len(sc.Down))
	}
	if _, err := DataCenterDisconnect(net, "nowhere"); err == nil {
		t.Error("unknown DC accepted")
	}
}

func TestNewRunnerValidation(t *testing.T) {
	_, net := testRunner(t)
	if _, err := NewRunner(nil, nil, DefaultCriteria()); err == nil {
		t.Error("nil network accepted")
	}
	bad := []routing.Demand{{Src: "ghost", Dst: "ghost", Gbps: 1}}
	if _, err := NewRunner(net, bad, DefaultCriteria()); err == nil {
		t.Error("invalid demands accepted")
	}
}

func TestRunUnknownDevice(t *testing.T) {
	r, _ := testRunner(t)
	if _, err := r.Run(Scenario{Name: "bad", Down: []string{"ghost"}}); err == nil {
		t.Error("unknown device in scenario accepted")
	}
}

func TestSingleDeviceOutagesPass(t *testing.T) {
	// §2: single-device failures are masked by redundancy — every
	// single-device drill should pass.
	r, net := testRunner(t)
	for _, dt := range topology.IntraDCTypes {
		sc, err := DeviceOutage(net, dt, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Pass {
			t.Errorf("drill %s failed: %v", sc.Name, res.Failures)
		}
	}
}

func TestDataCenterDisconnectFails(t *testing.T) {
	// Disconnecting a DC must trip the criteria: that is the point of the
	// drill.
	r, net := testRunner(t)
	sc, err := DataCenterDisconnect(net, "dc1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("DC disconnect drill passed — criteria not sensitive")
	}
	if res.StrandedRacks == 0 {
		t.Error("DC disconnect stranded no racks")
	}
	if res.Load.LostFraction() == 0 {
		t.Error("DC disconnect lost no volume")
	}
	if len(res.Failures) == 0 {
		t.Error("no failure reasons recorded")
	}
}

func TestRunAllStandardDrills(t *testing.T) {
	r, net := testRunner(t)
	scenarios, err := StandardDrills(net)
	if err != nil {
		t.Fatal(err)
	}
	// 7 device types + 2 data centers.
	if len(scenarios) != len(topology.IntraDCTypes)+2 {
		t.Fatalf("standard drills = %d", len(scenarios))
	}
	results, err := r.RunAll(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	passes, fails := 0, 0
	for _, res := range results {
		if res.Pass {
			passes++
		} else {
			fails++
		}
	}
	if passes != len(topology.IntraDCTypes) || fails != 2 {
		t.Errorf("passes=%d fails=%d, want single-device drills passing and DC drills failing", passes, fails)
	}
}

func BenchmarkStandardDrillSuite(b *testing.B) {
	net, err := fleet.RepresentativeTopology()
	if err != nil {
		b.Fatal(err)
	}
	demands, err := traffic.Generate(net, traffic.Config{}, simrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRunner(net, demands, DefaultCriteria())
	if err != nil {
		b.Fatal(err)
	}
	scenarios, err := StandardDrills(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunAll(scenarios); err != nil {
			b.Fatal(err)
		}
	}
}
