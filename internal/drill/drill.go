// Package drill implements the reliability exercises §5.7 describes: "we
// run periodical tests, including both fault injection testing and disaster
// recovery testing, to exercise the reliability of our production systems
// by simulating different types of network failures, such as device outages
// and disconnection of an entire data center."
//
// A Scenario names a set of devices to fail; the Runner injects the failure
// into the topology, re-routes the production demand matrix, and grades the
// outcome against pass criteria (no stranded racks beyond tolerance, no
// undeliverable volume beyond tolerance, no saturated devices).
package drill

import (
	"errors"
	"fmt"
	"sort"

	"dcnr/internal/routing"
	"dcnr/internal/topology"
	"dcnr/internal/traffic"
)

// Scenario is one injected failure.
type Scenario struct {
	// Name identifies the drill.
	Name string
	// Down lists the devices to fail.
	Down []string
}

// DeviceOutage builds a scenario failing the first count devices of the
// given type.
func DeviceOutage(net *topology.Network, t topology.DeviceType, count int) (Scenario, error) {
	devices := net.DevicesOfType(t)
	if count <= 0 || count > len(devices) {
		return Scenario{}, fmt.Errorf("drill: cannot fail %d of %d %v devices", count, len(devices), t)
	}
	sc := Scenario{Name: fmt.Sprintf("%d-%v-outage", count, t)}
	for i := 0; i < count; i++ {
		sc.Down = append(sc.Down, devices[i].Name)
	}
	return sc, nil
}

// DataCenterDisconnect builds the paper's headline drill: disconnection of
// an entire data center, injected by failing all of its core devices.
func DataCenterDisconnect(net *topology.Network, dc string) (Scenario, error) {
	sc := Scenario{Name: "disconnect-" + dc}
	for _, d := range net.DevicesOfType(topology.Core) {
		if d.DC == dc {
			sc.Down = append(sc.Down, d.Name)
		}
	}
	if len(sc.Down) == 0 {
		return Scenario{}, fmt.Errorf("drill: data center %q has no core devices", dc)
	}
	return sc, nil
}

// Criteria grades a drill.
type Criteria struct {
	// MaxStrandedRacks is the largest tolerable number of racks cut off
	// from the core layer.
	MaxStrandedRacks int
	// MaxLostFraction is the largest tolerable share of offered volume
	// left undelivered.
	MaxLostFraction float64
	// MaxUtilization is the saturation bound on any surviving device.
	MaxUtilization float64
}

// DefaultCriteria tolerates a single rack, 2% lost volume, and 95% peak
// utilization.
func DefaultCriteria() Criteria {
	return Criteria{MaxStrandedRacks: 1, MaxLostFraction: 0.02, MaxUtilization: 0.95}
}

// Result grades one executed drill.
type Result struct {
	Scenario Scenario
	// StrandedRacks counts racks with no path to any core device.
	StrandedRacks int
	// Load is the traffic picture under the failure.
	Load traffic.Report
	// Pass reports whether every criterion held.
	Pass bool
	// Failures lists the criteria that did not hold.
	Failures []string
}

// Runner executes drills against one topology and demand matrix.
type Runner struct {
	net      *topology.Network
	demands  []routing.Demand
	criteria Criteria
}

// NewRunner validates the demand matrix and returns a Runner.
func NewRunner(net *topology.Network, demands []routing.Demand, criteria Criteria) (*Runner, error) {
	if net == nil {
		return nil, errors.New("drill: nil network")
	}
	if err := routing.Validate(net, demands); err != nil {
		return nil, err
	}
	return &Runner{net: net, demands: demands, criteria: criteria}, nil
}

// Run injects the scenario and grades the outcome.
func (r *Runner) Run(sc Scenario) (Result, error) {
	down := make(map[string]bool, len(sc.Down))
	for _, name := range sc.Down {
		if r.net.Device(name) == nil {
			return Result{}, fmt.Errorf("drill: scenario %q fails unknown device %q", sc.Name, name)
		}
		down[name] = true
	}
	res := Result{
		Scenario:      sc,
		StrandedRacks: len(r.net.StrandedRacks(down)),
		Load:          traffic.Study(r.net, r.demands, down),
	}
	if res.StrandedRacks > r.criteria.MaxStrandedRacks {
		res.Failures = append(res.Failures,
			fmt.Sprintf("stranded %d racks (tolerance %d)", res.StrandedRacks, r.criteria.MaxStrandedRacks))
	}
	if lf := res.Load.LostFraction(); lf > r.criteria.MaxLostFraction {
		res.Failures = append(res.Failures,
			fmt.Sprintf("lost %.1f%% of volume (tolerance %.1f%%)", 100*lf, 100*r.criteria.MaxLostFraction))
	}
	if res.Load.MaxUtilization > r.criteria.MaxUtilization {
		res.Failures = append(res.Failures,
			fmt.Sprintf("%s at %.0f%% utilization (bound %.0f%%)",
				res.Load.MaxDevice, 100*res.Load.MaxUtilization, 100*r.criteria.MaxUtilization))
	}
	res.Pass = len(res.Failures) == 0
	return res, nil
}

// RunAll executes every scenario and returns results in order.
func (r *Runner) RunAll(scenarios []Scenario) ([]Result, error) {
	out := make([]Result, 0, len(scenarios))
	for _, sc := range scenarios {
		res, err := r.Run(sc)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// StandardDrills builds the suite the paper sketches: single-device
// outages for every type present plus a disconnect drill per data center.
func StandardDrills(net *topology.Network) ([]Scenario, error) {
	var out []Scenario
	for _, t := range topology.IntraDCTypes {
		if len(net.DevicesOfType(t)) == 0 {
			continue
		}
		sc, err := DeviceOutage(net, t, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	dcs := map[string]bool{}
	for _, d := range net.DevicesOfType(topology.Core) {
		dcs[d.DC] = true
	}
	names := make([]string, 0, len(dcs))
	for dc := range dcs {
		names = append(names, dc)
	}
	sort.Strings(names)
	for _, dc := range names {
		sc, err := DataCenterDisconnect(net, dc)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}
