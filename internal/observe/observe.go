// Package observe defines the shared observability wiring that every
// simulation entry point accepts: a metrics registry, a trace recorder, a
// streaming SLO engine, and a structured logger.
//
// Before this package each config struct (IntraConfig, backbone.Config)
// grew its own ad hoc Metrics/Trace/Health/Logger fields, and every new
// orchestrator — most recently the scenario-sweep engine — had to
// re-declare and re-thread the same pointers. Observe is that bundle,
// declared once and embedded by each config. Every field follows the
// project-wide nil contract: a nil field means "not instrumented" and
// costs the hot paths nothing.
package observe

import (
	"log/slog"

	"dcnr/internal/obs"
	"dcnr/internal/obs/health"
	"dcnr/internal/obs/journal"
	"dcnr/internal/obs/timeline"
)

// Observe bundles the optional observability sinks a simulation reports
// into. The zero value is a fully uninstrumented run.
type Observe struct {
	// Metrics, when non-nil, receives counters, gauges, and histograms
	// from the instrumented hot paths (DES kernel, remediation engine,
	// SEV query engine, sweep engine).
	Metrics *obs.Registry
	// Trace, when non-nil, records Chrome trace-event spans (wall-clock
	// and simulation-time lanes); write with Tracer.WriteJSON and load in
	// chrome://tracing or Perfetto.
	Trace *obs.Tracer
	// Health, when non-nil, receives the fault/repair/incident stream and
	// judges the run against its calibration targets live.
	Health *health.Engine
	// Logger, when non-nil, receives structured records carrying the
	// simulation clock; build the handler with obs.NewSimHandler.
	Logger *slog.Logger
	// Journal, when non-nil, records the causal lifecycle of every fault
	// (raised → detected → ticket → dispatched/escalated → repaired →
	// incident) as fixed-size records linked by parent IDs; write with
	// Journal.WriteJSONL, query with Journal.Index.
	Journal *journal.Journal
	// Timeline, when non-nil, samples the run's registry on the
	// timeline's sim-time cadence grid into time-series records: the
	// metric history a final Snapshot flattens away. A timeline without
	// Metrics still works — the wiring instruments the run with a
	// private registry just for sampling. Write with
	// Timeline.WriteJSONL, query with Timeline.Window or ServeHistory.
	Timeline *timeline.Timeline
}

// Or returns o with every nil field filled from fallback — the resolution
// rule for the deprecated flat config fields: an explicitly set Observe
// field wins, the legacy flat field backs it up.
func (o Observe) Or(fallback Observe) Observe {
	if o.Metrics == nil {
		o.Metrics = fallback.Metrics
	}
	if o.Trace == nil {
		o.Trace = fallback.Trace
	}
	if o.Health == nil {
		o.Health = fallback.Health
	}
	if o.Logger == nil {
		o.Logger = fallback.Logger
	}
	if o.Journal == nil {
		o.Journal = fallback.Journal
	}
	if o.Timeline == nil {
		o.Timeline = fallback.Timeline
	}
	return o
}
