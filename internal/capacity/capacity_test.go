package capacity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnavailability(t *testing.T) {
	u, err := Unavailability(999, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.001) > 1e-12 {
		t.Errorf("u = %v, want 0.001", u)
	}
	if _, err := Unavailability(0, 1); err == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := Unavailability(10, -1); err == nil {
		t.Error("negative MTTR accepted")
	}
	if u, _ := Unavailability(10, 0); u != 0 {
		t.Errorf("instant repair u = %v", u)
	}
}

func TestBinomTailExactSmallCases(t *testing.T) {
	// P(X >= 1) for n=2, p=0.5 is 0.75.
	if got := binomTail(2, 1, 0.5); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P(X>=1) = %v", got)
	}
	// P(X >= 2) for n=2, p=0.5 is 0.25.
	if got := binomTail(2, 2, 0.5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("P(X>=2) = %v", got)
	}
	if got := binomTail(5, 0, 0.1); got != 1 {
		t.Errorf("P(X>=0) = %v", got)
	}
	if got := binomTail(5, 6, 0.1); got != 0 {
		t.Errorf("P(X>=6) = %v", got)
	}
	if got := binomTail(5, 2, 0); got != 0 {
		t.Errorf("p=0 tail = %v", got)
	}
	if got := binomTail(5, 2, 1); got != 1 {
		t.Errorf("p=1 tail = %v", got)
	}
}

func TestGroupRiskEightCores(t *testing.T) {
	// §5.2's design point: 8 Cores tolerating 1 loss. With a Core MTBI of
	// ~39 500 h and repairs of ~30 h, unavailability ≈ 7.6e-4; the risk of
	// losing a *second* core concurrently must be tiny.
	u, err := Unavailability(39495, 30)
	if err != nil {
		t.Fatal(err)
	}
	risk, err := GroupRisk(8, 1, u)
	if err != nil {
		t.Fatal(err)
	}
	if risk > 2e-5 {
		t.Errorf("8-core 1-spare risk = %v, want < 2e-5", risk)
	}
	// With no spare, the risk is ~8x the single-device unavailability.
	risk0, err := GroupRisk(8, 0, u)
	if err != nil {
		t.Fatal(err)
	}
	if risk0 < 5*u || risk0 > 9*u {
		t.Errorf("no-spare risk = %v, want ~8u = %v", risk0, 8*u)
	}
}

func TestGroupRiskValidation(t *testing.T) {
	if _, err := GroupRisk(0, 0, 0.1); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := GroupRisk(4, 4, 0.1); err == nil {
		t.Error("all-spare group accepted")
	}
	if _, err := GroupRisk(4, -1, 0.1); err == nil {
		t.Error("negative spare accepted")
	}
	if _, err := GroupRisk(4, 1, 1.5); err == nil {
		t.Error("unavailability > 1 accepted")
	}
}

func TestProvisionFourNines(t *testing.T) {
	// Needing 7 cores of availability with u ≈ 7.6e-4 should land on the
	// paper's 8 (one spare).
	u, _ := Unavailability(39495, 30)
	plan, err := Provision(7, u, FourNines)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Provision != 8 || plan.Spares() != 1 {
		t.Errorf("plan = %+v, want 8 devices (1 spare)", plan)
	}
	if plan.Risk > FourNines {
		t.Errorf("plan risk %v exceeds target", plan.Risk)
	}
}

func TestProvisionScalesWithUnreliability(t *testing.T) {
	reliable, err := Provision(4, 1e-4, FourNines)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := Provision(4, 0.05, FourNines)
	if err != nil {
		t.Fatal(err)
	}
	if flaky.Provision <= reliable.Provision {
		t.Errorf("flaky devices need more spares: %d vs %d", flaky.Provision, reliable.Provision)
	}
}

func TestProvisionImpossible(t *testing.T) {
	if _, err := Provision(2, 0.9, 1e-9); err == nil {
		t.Error("impossible target accepted")
	}
}

func TestProvisionValidation(t *testing.T) {
	if _, err := Provision(0, 0.1, 1e-4); err == nil {
		t.Error("need=0 accepted")
	}
	if _, err := Provision(2, 0.1, 0); err == nil {
		t.Error("maxRisk=0 accepted")
	}
	if _, err := Provision(2, 2, 1e-4); err == nil {
		t.Error("unavailability=2 accepted")
	}
}

func TestProvisionMonotoneProperty(t *testing.T) {
	// More spares never increase risk.
	f := func(nRaw, uRaw uint8) bool {
		n := int(nRaw%10) + 2
		u := float64(uRaw%100) / 200 // [0, 0.5)
		prev := 2.0
		for spare := 0; spare < n; spare++ {
			risk, err := GroupRisk(n, spare, u)
			if err != nil {
				return false
			}
			if risk > prev+1e-12 {
				return false
			}
			prev = risk
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMTBFFromRate(t *testing.T) {
	mtbf, err := MTBFFromRate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if mtbf != 2*8760 {
		t.Errorf("MTBF = %v", mtbf)
	}
	if _, err := MTBFFromRate(0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestPlanSpares(t *testing.T) {
	p := Plan{Need: 7, Provision: 9}
	if p.Spares() != 2 {
		t.Errorf("Spares = %d", p.Spares())
	}
}
