// Package capacity turns the study's reliability measurements into
// provisioning decisions, the way §5.2 and §6.1 describe Facebook using
// them: "we currently provision eight Cores in each data center, which
// allows us to tolerate one unavailable Core ... without any impact", and
// "we use these models in capacity planning to calculate conditional risk
// ... We plan edge and link capacity to tolerate the 99.99th percentile of
// conditional risk."
//
// A device's steady-state unavailability follows from its measured MTBF
// and MTTR (u = MTTR/(MTBF+MTTR)); with independent failures inside a
// redundancy group, the number of concurrently-down devices is binomial.
// The planner sizes groups so that the probability of losing more devices
// than the group can spare stays below the availability target.
package capacity

import (
	"errors"
	"fmt"
	"math"
)

// Unavailability returns the steady-state probability a device is down
// given its mean time between failures and mean time to repair (hours).
func Unavailability(mtbf, mttr float64) (float64, error) {
	if mtbf <= 0 || mttr < 0 {
		return 0, fmt.Errorf("capacity: invalid MTBF %v / MTTR %v", mtbf, mttr)
	}
	return mttr / (mtbf + mttr), nil
}

// binomTail returns P(X >= k) for X ~ Binomial(n, p), computed stably in
// log space.
func binomTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	logP, log1P := math.Log(p), math.Log1p(-p)
	tail := 0.0
	for i := k; i <= n; i++ {
		logC, _ := math.Lgamma(float64(n + 1))
		l1, _ := math.Lgamma(float64(i + 1))
		l2, _ := math.Lgamma(float64(n - i + 1))
		logTerm := logC - l1 - l2 + float64(i)*logP + float64(n-i)*log1P
		tail += math.Exp(logTerm)
	}
	if tail > 1 {
		tail = 1
	}
	return tail
}

// GroupRisk returns the probability that a redundancy group of n devices,
// each with the given unavailability, has more than spare devices down
// simultaneously — i.e. the group cannot mask the failures.
func GroupRisk(n, spare int, unavailability float64) (float64, error) {
	if n < 1 || spare < 0 || spare >= n {
		return 0, fmt.Errorf("capacity: invalid group n=%d spare=%d", n, spare)
	}
	if unavailability < 0 || unavailability > 1 {
		return 0, errors.New("capacity: unavailability outside [0, 1]")
	}
	return binomTail(n, spare+1, unavailability), nil
}

// Plan is a provisioning recommendation.
type Plan struct {
	// Need is the number of devices required to carry the load.
	Need int
	// Provision is the recommended group size (Need + spares).
	Provision int
	// Risk is the residual probability of losing more than the spares.
	Risk float64
}

// Spares returns the redundancy headroom.
func (p Plan) Spares() int { return p.Provision - p.Need }

// Provision sizes a redundancy group: the smallest group of size >= need
// whose probability of having fewer than need devices up stays below
// maxRisk. It returns an error if no group of at most 4x need suffices
// (the unavailability is too high to engineer around with spares alone).
func Provision(need int, unavailability, maxRisk float64) (Plan, error) {
	if need < 1 {
		return Plan{}, errors.New("capacity: need at least one device")
	}
	if maxRisk <= 0 || maxRisk >= 1 {
		return Plan{}, errors.New("capacity: maxRisk outside (0, 1)")
	}
	if unavailability < 0 || unavailability > 1 {
		return Plan{}, errors.New("capacity: unavailability outside [0, 1]")
	}
	for n := need; n <= 4*need; n++ {
		risk := binomTail(n, n-need+1, unavailability)
		if risk <= maxRisk {
			return Plan{Need: need, Provision: n, Risk: risk}, nil
		}
	}
	return Plan{}, fmt.Errorf("capacity: cannot reach risk %g with up to %d devices (unavailability %g)",
		maxRisk, 4*need, unavailability)
}

// FourNines is the availability target §6.1 reports Facebook planning to:
// tolerate the 99.99th percentile of conditional risk.
const FourNines = 1e-4

// MTBFFromRate converts a per-device-per-year incident rate (the Figure 3
// metric) into MTBF in device-hours.
func MTBFFromRate(ratePerYear float64) (float64, error) {
	if ratePerYear <= 0 {
		return 0, errors.New("capacity: non-positive rate")
	}
	return 365 * 24 / ratePerYear, nil
}
