package service

import (
	"strings"
	"testing"

	"dcnr/internal/fleet"
	"dcnr/internal/sev"
	"dcnr/internal/topology"
)

func testAssessor(t *testing.T) (*Assessor, *topology.Network) {
	t.Helper()
	net, err := fleet.RepresentativeTopology()
	if err != nil {
		t.Fatal(err)
	}
	return NewAssessor(net), net
}

func firstOfType(t *testing.T, net *topology.Network, dt topology.DeviceType) string {
	t.Helper()
	ds := net.DevicesOfType(dt)
	if len(ds) == 0 {
		t.Fatalf("no %v devices", dt)
	}
	return ds[0].Name
}

func TestScopeString(t *testing.T) {
	if ScopeDevice.String() != "device" || ScopeGroup.String() != "group" || ScopeUnit.String() != "unit" {
		t.Error("scope names wrong")
	}
	if !strings.Contains(Scope(9).String(), "9") {
		t.Error("unknown scope String")
	}
}

func TestUnknownDevice(t *testing.T) {
	a, _ := testAssessor(t)
	if _, err := a.Assess("ghost", ScopeDevice); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestInvalidScope(t *testing.T) {
	a, net := testAssessor(t)
	if _, err := a.Assess(firstOfType(t, net, topology.RSW), Scope(42)); err == nil {
		t.Error("invalid scope accepted")
	}
}

func TestSingleDeviceFailuresAreMasked(t *testing.T) {
	// §2: with built-in redundancy, isolated faults do not become
	// high-severity incidents, for any device type.
	a, net := testAssessor(t)
	for _, dt := range topology.IntraDCTypes {
		as, err := a.Assess(firstOfType(t, net, dt), ScopeDevice)
		if err != nil {
			t.Fatal(err)
		}
		if as.Severity != sev.Sev3 {
			t.Errorf("%v isolated failure → %v, want SEV3", dt, as.Severity)
		}
	}
}

func TestRSWFailureStrandsOneRack(t *testing.T) {
	a, net := testAssessor(t)
	as, err := a.Assess(firstOfType(t, net, topology.RSW), ScopeDevice)
	if err != nil {
		t.Fatal(err)
	}
	if as.StrandedRacks != 1 {
		t.Errorf("stranded = %d, want 1 (single-TOR design)", as.StrandedRacks)
	}
	if as.Severity != sev.Sev3 {
		t.Errorf("severity = %v; replication should absorb one rack", as.Severity)
	}
}

func TestGroupScopeEscalatesToSev2(t *testing.T) {
	// Half the redundancy group under load → service-affecting (the
	// paper's faulty-CSA SEV2 example).
	a, net := testAssessor(t)
	for _, dt := range []topology.DeviceType{topology.Core, topology.CSA, topology.CSW, topology.FSW} {
		as, err := a.Assess(firstOfType(t, net, dt), ScopeGroup)
		if err != nil {
			t.Fatal(err)
		}
		if as.Severity != sev.Sev2 {
			t.Errorf("%v group failure → %v (loss %.2f, stranded %d), want SEV2",
				dt, as.Severity, as.CapacityLoss, as.StrandedRacks)
		}
	}
}

func TestUnitScopeIsAnOutage(t *testing.T) {
	// Whole-group cascades partition connectivity → SEV1 (the paper's
	// load-balancer SEV1 example).
	a, net := testAssessor(t)
	for _, dt := range []topology.DeviceType{topology.CSA, topology.CSW, topology.ESW, topology.RSW} {
		as, err := a.Assess(firstOfType(t, net, dt), ScopeUnit)
		if err != nil {
			t.Fatal(err)
		}
		if as.Severity != sev.Sev1 {
			t.Errorf("%v unit cascade → %v (stranded %d), want SEV1", dt, as.Severity, as.StrandedRacks)
		}
	}
}

func TestSeverityMonotoneInScope(t *testing.T) {
	// Wider scope must never produce a *less* severe assessment.
	a, net := testAssessor(t)
	for _, dt := range topology.IntraDCTypes {
		name := firstOfType(t, net, dt)
		var prev sev.Severity = sev.Sev3
		for _, scope := range []Scope{ScopeDevice, ScopeGroup, ScopeUnit} {
			as, err := a.Assess(name, scope)
			if err != nil {
				t.Fatal(err)
			}
			if as.Severity > prev { // numerically higher = less severe
				t.Errorf("%v: severity regressed at scope %v", dt, scope)
			}
			prev = as.Severity
		}
	}
}

func TestPeers(t *testing.T) {
	a, net := testAssessor(t)
	// A CSW's peers are the other 3 CSWs of its cluster.
	csw := firstOfType(t, net, topology.CSW)
	if got := len(a.Peers(csw)); got != 3 {
		t.Errorf("CSW peers = %d, want 3", got)
	}
	// A Core's peers are the other 7 cores of its DC.
	core := firstOfType(t, net, topology.Core)
	if got := len(a.Peers(core)); got != 7 {
		t.Errorf("Core peers = %d, want 7", got)
	}
	if a.Peers("ghost") != nil {
		t.Error("unknown device has peers")
	}
}

func TestCapacityLossFractions(t *testing.T) {
	a, net := testAssessor(t)
	as, err := a.Assess(firstOfType(t, net, topology.Core), ScopeDevice)
	if err != nil {
		t.Fatal(err)
	}
	if as.CapacityLoss != 1.0/8 {
		t.Errorf("core device loss = %v, want 1/8", as.CapacityLoss)
	}
	as, err = a.Assess(firstOfType(t, net, topology.Core), ScopeGroup)
	if err != nil {
		t.Fatal(err)
	}
	if as.CapacityLoss != 0.5 {
		t.Errorf("core group loss = %v, want 1/2", as.CapacityLoss)
	}
}

func TestDownListsSortedDevices(t *testing.T) {
	a, net := testAssessor(t)
	as, err := a.Assess(firstOfType(t, net, topology.CSW), ScopeUnit)
	if err != nil {
		t.Fatal(err)
	}
	if len(as.Down) != 4 {
		t.Errorf("unit scope down = %v, want the 4 cluster CSWs", as.Down)
	}
	for i := 1; i < len(as.Down); i++ {
		if as.Down[i] < as.Down[i-1] {
			t.Error("Down not sorted")
		}
	}
}

func TestAffectedServicesNamed(t *testing.T) {
	a, net := testAssessor(t)
	as, err := a.Assess(firstOfType(t, net, topology.CSA), ScopeUnit)
	if err != nil {
		t.Fatal(err)
	}
	if len(as.Services) == 0 {
		t.Error("DC-wide outage affected no services")
	}
	for _, s := range as.Services {
		found := false
		for _, known := range ServiceNames {
			if s == known {
				found = true
			}
		}
		if !found {
			t.Errorf("unknown service %q", s)
		}
	}
}

func TestImpactDescriptions(t *testing.T) {
	a, net := testAssessor(t)
	as, _ := a.Assess(firstOfType(t, net, topology.CSA), ScopeUnit)
	if !strings.Contains(as.Impact, "partitioned") {
		t.Errorf("SEV1 impact = %q", as.Impact)
	}
	as, _ = a.Assess(firstOfType(t, net, topology.Core), ScopeDevice)
	if !strings.Contains(as.Impact, "masked") {
		t.Errorf("masked impact = %q", as.Impact)
	}
}

func TestSEV1FractionConfigurable(t *testing.T) {
	a, net := testAssessor(t)
	a.SEV1Fraction = 1.1 // impossible threshold: nothing is ever SEV1
	as, err := a.Assess(firstOfType(t, net, topology.CSA), ScopeUnit)
	if err != nil {
		t.Fatal(err)
	}
	if as.Severity == sev.Sev1 {
		t.Error("SEV1 threshold not respected")
	}
}

func BenchmarkAssessUnitScope(b *testing.B) {
	net, err := fleet.RepresentativeTopology()
	if err != nil {
		b.Fatal(err)
	}
	a := NewAssessor(net)
	name := net.DevicesOfType(topology.CSW)[0].Name
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Assess(name, ScopeUnit); err != nil {
			b.Fatal(err)
		}
	}
}
