// Package service models the production systems that run on the data center
// network and decides the service-level severity of a network failure.
//
// The paper's central methodological point (§2) is that device-level faults
// and service-level incidents are different things: redundancy and failover
// mask most faults. This package realizes that distinction mechanically. A
// failure is described by the failing device and a Scope — how much of the
// device's redundancy group the root cause consumed (a lone crash, a
// half-group event such as maintenance without draining, or a whole-group
// cascade such as the paper's SEV1 load-balancer example). The severity is
// then *computed from the topology*: racks stranded from the core layer,
// and capacity lost within the redundancy group, determine whether the
// event is masked (SEV3), service-affecting (SEV2), or an outage (SEV1).
package service

import (
	"fmt"
	"sort"
	"sync"

	"dcnr/internal/sev"
	"dcnr/internal/topology"
)

// Scope describes how much of the failing device's redundancy group a root
// cause consumed.
type Scope int

const (
	// ScopeDevice is an isolated single-device failure; redundancy
	// normally masks it.
	ScopeDevice Scope = iota
	// ScopeGroup is a failure of about half the redundancy group under
	// load — e.g. maintenance performed without draining (§5.2), or the
	// faulty-CSA traffic shift of the paper's SEV2 example. The surviving
	// devices absorb a traffic spike, so tolerance to further capacity
	// loss is halved.
	ScopeGroup
	// ScopeUnit is a whole-group cascade — e.g. the misconfigured
	// load-balancer of the paper's SEV1 example taking out a deployment
	// unit.
	ScopeUnit
)

// String names the scope.
func (s Scope) String() string {
	switch s {
	case ScopeDevice:
		return "device"
	case ScopeGroup:
		return "group"
	case ScopeUnit:
		return "unit"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Names of the service families the paper lists as affected systems (§4.1).
var ServiceNames = []string{"web", "cache", "storage", "batch", "realtime"}

// Assessment is the outcome of evaluating a failure against the topology.
type Assessment struct {
	// Severity is the resulting SEV level.
	Severity sev.Severity
	// StrandedRacks is the number of racks that lost all connectivity to
	// the core layer.
	StrandedRacks int
	// CapacityLoss is the fraction of the failing device's redundancy
	// group that went down.
	CapacityLoss float64
	// Down lists the devices the failure took down (the failing device
	// and any redundancy peers its scope consumed), sorted.
	Down []string
	// Services lists the affected service families, sorted.
	Services []string
	// Impact is a human-readable description of the service-level effect,
	// in the vocabulary of §4.2 (lost capacity, retries, partitioned
	// connectivity, congestion).
	Impact string
}

// Assessor evaluates failures against a topology. Construct with
// NewAssessor; the assessor indexes racks per data center and assigns
// service families to racks round-robin.
type Assessor struct {
	net         *topology.Network
	racksPerDC  map[string]int
	rackService map[string]string
	// SEV1Fraction is the fraction of a data center's racks that must be
	// stranded before the event is an outage-level SEV1. The default 0.25
	// corresponds to losing a whole deployment unit of a four-unit DC.
	SEV1Fraction float64

	// cache memoizes assessments: Assess is deterministic in (device,
	// scope, SEV1Fraction), and the fault simulation evaluates the same
	// representative devices repeatedly.
	mu    sync.Mutex
	cache map[cacheKey]Assessment
}

type cacheKey struct {
	name     string
	scope    Scope
	fraction float64
}

// NewAssessor builds an Assessor over net.
func NewAssessor(net *topology.Network) *Assessor {
	a := &Assessor{
		net:          net,
		racksPerDC:   make(map[string]int),
		rackService:  make(map[string]string),
		SEV1Fraction: 0.25,
		cache:        make(map[cacheKey]Assessment),
	}
	for i, rsw := range net.DevicesOfType(topology.RSW) {
		a.racksPerDC[rsw.DC]++
		a.rackService[rsw.Name] = ServiceNames[i%len(ServiceNames)]
	}
	return a
}

// Peers returns the redundancy group of the named device: devices of the
// same type sharing the failure domain (the unit for CSW/FSW/RSW, the data
// center otherwise), excluding the device itself.
func (a *Assessor) Peers(name string) []string {
	d := a.net.Device(name)
	if d == nil {
		return nil
	}
	var peers []string
	for _, other := range a.net.DevicesOfType(d.Type) {
		if other.Name == name || other.DC != d.DC {
			continue
		}
		switch d.Type {
		case topology.CSW, topology.FSW, topology.RSW:
			if other.Unit == d.Unit {
				peers = append(peers, other.Name)
			}
		default:
			peers = append(peers, other.Name)
		}
	}
	return peers
}

// Assess evaluates the failure of the named device at the given scope.
func (a *Assessor) Assess(name string, scope Scope) (Assessment, error) {
	key := cacheKey{name, scope, a.SEV1Fraction}
	a.mu.Lock()
	if cached, ok := a.cache[key]; ok {
		a.mu.Unlock()
		return cached, nil
	}
	a.mu.Unlock()
	as, err := a.assess(name, scope)
	if err == nil {
		a.mu.Lock()
		a.cache[key] = as
		a.mu.Unlock()
	}
	return as, err
}

func (a *Assessor) assess(name string, scope Scope) (Assessment, error) {
	d := a.net.Device(name)
	if d == nil {
		return Assessment{}, fmt.Errorf("service: unknown device %q", name)
	}
	peers := a.Peers(name)
	group := len(peers) + 1

	down := map[string]bool{name: true}
	stressed := false
	switch scope {
	case ScopeDevice:
		// Only the device itself.
	case ScopeGroup:
		// Half the group is gone (rounded down, at least the device),
		// and the survivors absorb the shifted traffic.
		stressed = true
		for i := 0; i < len(peers) && len(down) < (group+1)/2; i++ {
			down[peers[i]] = true
		}
	case ScopeUnit:
		for _, p := range peers {
			down[p] = true
		}
	default:
		return Assessment{}, fmt.Errorf("service: invalid scope %d", int(scope))
	}

	stranded := a.net.StrandedRacks(down)
	loss := float64(len(down)) / float64(group)

	as := Assessment{
		StrandedRacks: len(stranded),
		CapacityLoss:  loss,
		Down:          sortedKeys(down),
		Services:      a.affectedServices(name, stranded),
	}

	dcRacks := a.racksPerDC[d.DC]
	switch {
	case dcRacks > 0 && float64(len(stranded)) >= a.SEV1Fraction*float64(dcRacks):
		as.Severity = sev.Sev1
		as.Impact = fmt.Sprintf("partitioned connectivity: %d of %d racks in the data center unreachable", len(stranded), dcRacks)
	case len(stranded) > 1:
		as.Severity = sev.Sev2
		as.Impact = fmt.Sprintf("downtime from partitioned connectivity on %d racks", len(stranded))
	case len(stranded) == 1:
		// A single stranded rack: replication and distribution of server
		// resources absorb it (§5.4's single-TOR design rationale).
		as.Severity = sev.Sev3
		as.Impact = "single rack offline; replicas absorbed the load"
	default:
		// No stranding: judge by surviving capacity. Stressed survivors
		// (traffic shifted onto them mid-spike) tolerate only a quarter
		// of the group lost; unstressed groups mask anything short of
		// total loss of redundancy.
		threshold := 0.75
		if stressed {
			threshold = 0.25
		}
		if loss >= threshold {
			as.Severity = sev.Sev2
			as.Impact = fmt.Sprintf("increased load from lost capacity (%.0f%% of %v group); retries and elevated latency", loss*100, d.Type)
		} else {
			as.Severity = sev.Sev3
			as.Impact = fmt.Sprintf("redundant capacity masked loss of %d of %d %v devices", len(down), group, d.Type)
		}
	}
	return as, nil
}

func (a *Assessor) affectedServices(device string, stranded []string) []string {
	set := make(map[string]bool)
	for _, rack := range stranded {
		if svc, ok := a.rackService[rack]; ok {
			set[svc] = true
		}
	}
	if len(set) == 0 {
		// No stranding: the services behind the device's downstream racks
		// saw elevated latency or retries.
		reach := a.net.ReachableSet(device, nil)
		for rack, svc := range a.rackService {
			if reach[rack] {
				set[svc] = true
			}
		}
	}
	return sortedKeys(set)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
