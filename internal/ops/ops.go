// Package ops models the operational practices the paper credits with
// large reliability swings:
//
//   - Drain-before-maintenance. "Prior to 2014, network device repairs
//     were often performed without draining the traffic on their links"
//     (§5.2); adding the drain step was "a simple but effective means to
//     limit the likelihood of repair affecting production traffic" and
//     helped raise CSA MTBI by two orders of magnitude. The Scheduler
//     performs rolling maintenance over a redundancy group under either
//     policy and assesses mishaps against the topology.
//
//   - Guarded configuration changes. "At Facebook ... all configuration
//     changes require code review and typically get tested on a small
//     number of switches before being deployed to the fleet" — the
//     practice §5.1 credits for a misconfiguration rate far below Wu et
//     al.'s. Guard deploys changes through optional review and canary
//     stages and reports the blast radius of faulty ones.
//
// Both mechanisms are deterministic in their random stream, so the
// ablations (drained vs undrained, guarded vs unguarded) are exactly
// repeatable.
package ops

import (
	"errors"
	"fmt"

	"dcnr/internal/service"
	"dcnr/internal/sev"
	"dcnr/internal/simrand"
)

// DrainPolicy selects how maintenance handles live traffic.
type DrainPolicy int

const (
	// NoDrain performs work on a device while it carries traffic — the
	// pre-2014 practice.
	NoDrain DrainPolicy = iota
	// DrainFirst shifts traffic away before work begins.
	DrainFirst
)

// String names the policy.
func (p DrainPolicy) String() string {
	switch p {
	case NoDrain:
		return "no-drain"
	case DrainFirst:
		return "drain-first"
	default:
		return fmt.Sprintf("DrainPolicy(%d)", int(p))
	}
}

// Scheduler performs rolling maintenance.
type Scheduler struct {
	// MishapProb is the per-step probability that maintenance goes wrong
	// (botched upgrade, wrong device power-cycled). Defaults to 0.05 in
	// NewScheduler.
	MishapProb float64

	assessor *service.Assessor
	rng      *simrand.Stream
}

// NewScheduler returns a Scheduler assessing mishaps against assessor.
func NewScheduler(assessor *service.Assessor, rng *simrand.Stream) (*Scheduler, error) {
	if assessor == nil || rng == nil {
		return nil, errors.New("ops: nil assessor or rng")
	}
	return &Scheduler{MishapProb: 0.05, assessor: assessor, rng: rng}, nil
}

// MaintenanceReport records one rolling-maintenance run.
type MaintenanceReport struct {
	// Group lists the devices maintained, in order.
	Group []string
	// Policy is the drain policy used.
	Policy DrainPolicy
	// Steps is the number of devices maintained (always the full group;
	// mishaps are repaired in place, not aborted).
	Steps int
	// Mishaps counts the steps that went wrong.
	Mishaps int
	// Incidents holds the severities of the service-level incidents the
	// mishaps caused (mishaps fully masked by redundancy produce none).
	Incidents []sev.Severity
}

// IncidentCount returns the number of service-affecting incidents (SEV2 or
// worse) the run caused.
func (r MaintenanceReport) IncidentCount() int {
	n := 0
	for _, s := range r.Incidents {
		if s <= sev.Sev2 {
			n++
		}
	}
	return n
}

// RollingMaintenance performs maintenance on each device of group in turn.
//
// Under DrainFirst, a mishap leaves one drained device down: the
// redundancy group absorbs it calmly (assessed at device scope). Under
// NoDrain, a mishap drops a device that was carrying production traffic:
// the survivors absorb an instantaneous shift while already serving load
// (assessed at group scope — the situation of the paper's faulty-CSA SEV2
// example). Mishaps that the assessor judges masked (SEV3) are not
// counted as incidents.
func (s *Scheduler) RollingMaintenance(group []string, policy DrainPolicy) (MaintenanceReport, error) {
	if len(group) == 0 {
		return MaintenanceReport{}, errors.New("ops: empty maintenance group")
	}
	if policy != NoDrain && policy != DrainFirst {
		return MaintenanceReport{}, fmt.Errorf("ops: invalid policy %d", int(policy))
	}
	rep := MaintenanceReport{Group: group, Policy: policy}
	for _, device := range group {
		rep.Steps++
		if !s.rng.Bool(s.MishapProb) {
			continue
		}
		rep.Mishaps++
		scope := service.ScopeGroup
		if policy == DrainFirst {
			scope = service.ScopeDevice
		}
		as, err := s.assessor.Assess(device, scope)
		if err != nil {
			return MaintenanceReport{}, fmt.Errorf("ops: assessing mishap on %s: %w", device, err)
		}
		if as.Severity <= sev.Sev2 {
			rep.Incidents = append(rep.Incidents, as.Severity)
		}
	}
	return rep, nil
}

// Change is a configuration change heading for the fleet.
type Change struct {
	// Desc describes the change.
	Desc string
	// Faulty marks a change that would misbehave in production.
	Faulty bool
}

// Guard is the deployment pipeline configuration.
type Guard struct {
	// Review enables pre-deployment code review.
	Review bool
	// CanarySize is the number of switches the change is tested on before
	// fleet rollout; 0 disables the canary stage.
	CanarySize int
	// ReviewCatchProb and CanaryCatchProb are the per-stage probabilities
	// that a faulty change is caught. NewGuard sets the defaults (0.5 and
	// 0.9 — canaries catch most issues because the fault manifests on
	// real hardware).
	ReviewCatchProb, CanaryCatchProb float64
}

// NewGuard returns the guarded pipeline the paper describes: review plus a
// small canary.
func NewGuard(canarySize int) Guard {
	return Guard{
		Review:          true,
		CanarySize:      canarySize,
		ReviewCatchProb: 0.5,
		CanaryCatchProb: 0.9,
	}
}

// Unguarded returns a pipeline with no protections: straight to fleet.
func Unguarded() Guard { return Guard{} }

// Deployment reports where a change landed.
type Deployment struct {
	// CaughtAt is "review", "canary", or "" when the change reached the
	// fleet.
	CaughtAt string
	// AffectedDevices is the number of devices a faulty change actually
	// misconfigured (0 for clean changes and review catches, the canary
	// size for canary catches, the whole fleet otherwise).
	AffectedDevices int
}

// Deploy pushes change toward a fleet of fleetSize devices through the
// guard's stages.
func (g Guard) Deploy(change Change, fleetSize int, rng *simrand.Stream) (Deployment, error) {
	if fleetSize <= 0 {
		return Deployment{}, errors.New("ops: non-positive fleet size")
	}
	if g.CanarySize < 0 || g.CanarySize > fleetSize {
		return Deployment{}, fmt.Errorf("ops: canary size %d outside [0, %d]", g.CanarySize, fleetSize)
	}
	if !change.Faulty {
		return Deployment{}, nil
	}
	if g.Review && rng.Bool(g.ReviewCatchProb) {
		return Deployment{CaughtAt: "review"}, nil
	}
	if g.CanarySize > 0 && rng.Bool(g.CanaryCatchProb) {
		return Deployment{CaughtAt: "canary", AffectedDevices: g.CanarySize}, nil
	}
	return Deployment{AffectedDevices: fleetSize}, nil
}

// BlastStudy deploys n faulty changes through the guard and returns the
// mean number of devices each misconfigured — the expected blast radius.
func BlastStudy(g Guard, n, fleetSize int, rng *simrand.Stream) (float64, error) {
	if n <= 0 {
		return 0, errors.New("ops: non-positive trial count")
	}
	total := 0
	for i := 0; i < n; i++ {
		dep, err := g.Deploy(Change{Desc: "trial", Faulty: true}, fleetSize, rng)
		if err != nil {
			return 0, err
		}
		total += dep.AffectedDevices
	}
	return float64(total) / float64(n), nil
}
