package ops

import (
	"strings"
	"testing"

	"dcnr/internal/fleet"
	"dcnr/internal/service"
	"dcnr/internal/simrand"
	"dcnr/internal/topology"
)

func testScheduler(t *testing.T, seed uint64) (*Scheduler, *topology.Network) {
	t.Helper()
	net, err := fleet.RepresentativeTopology()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(service.NewAssessor(net), simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s, net
}

func cswGroup(t *testing.T, net *topology.Network) []string {
	t.Helper()
	var group []string
	unit := net.DevicesOfType(topology.CSW)[0].Unit
	for _, d := range net.DevicesOfType(topology.CSW) {
		if d.Unit == unit {
			group = append(group, d.Name)
		}
	}
	return group
}

func TestDrainPolicyString(t *testing.T) {
	if NoDrain.String() != "no-drain" || DrainFirst.String() != "drain-first" {
		t.Error("policy names wrong")
	}
	if !strings.Contains(DrainPolicy(7).String(), "7") {
		t.Error("unknown policy String")
	}
}

func TestNewSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(nil, simrand.New(1)); err == nil {
		t.Error("nil assessor accepted")
	}
	net, _ := fleet.RepresentativeTopology()
	if _, err := NewScheduler(service.NewAssessor(net), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRollingMaintenanceValidation(t *testing.T) {
	s, _ := testScheduler(t, 1)
	if _, err := s.RollingMaintenance(nil, DrainFirst); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := s.RollingMaintenance([]string{"csw001.cl001.dc1.regiona"}, DrainPolicy(9)); err == nil {
		t.Error("invalid policy accepted")
	}
	if _, err := s.RollingMaintenance([]string{"ghost"}, NoDrain); err == nil {
		// Mishap assessment on an unknown device must surface the error,
		// but only mishap steps assess — force one.
		s.MishapProb = 1
		if _, err := s.RollingMaintenance([]string{"ghost"}, NoDrain); err == nil {
			t.Error("unknown device never surfaced an error")
		}
	}
}

func TestDrainFirstPreventsIncidents(t *testing.T) {
	// The §5.2 mechanism: the same mishaps, drained vs undrained.
	sDrain, net := testScheduler(t, 42)
	sDrain.MishapProb = 1 // every step goes wrong
	group := cswGroup(t, net)

	repDrain, err := sDrain.RollingMaintenance(group, DrainFirst)
	if err != nil {
		t.Fatal(err)
	}
	if repDrain.Mishaps != len(group) {
		t.Fatalf("mishaps = %d", repDrain.Mishaps)
	}
	if got := repDrain.IncidentCount(); got != 0 {
		t.Errorf("drained maintenance caused %d incidents, want 0 (redundancy absorbs)", got)
	}

	sNoDrain, _ := testScheduler(t, 42)
	sNoDrain.MishapProb = 1
	repNoDrain, err := sNoDrain.RollingMaintenance(group, NoDrain)
	if err != nil {
		t.Fatal(err)
	}
	if got := repNoDrain.IncidentCount(); got != len(group) {
		t.Errorf("undrained mishaps caused %d incidents, want %d (stressed survivors)", got, len(group))
	}
}

func TestMaintenanceMishapRate(t *testing.T) {
	s, net := testScheduler(t, 7)
	s.MishapProb = 0.05
	group := cswGroup(t, net)
	mishaps, steps := 0, 0
	for i := 0; i < 500; i++ {
		rep, err := s.RollingMaintenance(group, DrainFirst)
		if err != nil {
			t.Fatal(err)
		}
		mishaps += rep.Mishaps
		steps += rep.Steps
	}
	rate := float64(mishaps) / float64(steps)
	if rate < 0.03 || rate > 0.07 {
		t.Errorf("mishap rate = %.4f, want ~0.05", rate)
	}
}

func TestGuardDeployCleanChange(t *testing.T) {
	dep, err := NewGuard(10).Deploy(Change{Desc: "clean"}, 1000, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if dep.CaughtAt != "" || dep.AffectedDevices != 0 {
		t.Errorf("clean change deployment = %+v", dep)
	}
}

func TestGuardValidation(t *testing.T) {
	rng := simrand.New(1)
	if _, err := NewGuard(10).Deploy(Change{}, 0, rng); err == nil {
		t.Error("zero fleet accepted")
	}
	g := Guard{CanarySize: -1}
	if _, err := g.Deploy(Change{}, 100, rng); err == nil {
		t.Error("negative canary accepted")
	}
	g = Guard{CanarySize: 200}
	if _, err := g.Deploy(Change{}, 100, rng); err == nil {
		t.Error("canary larger than fleet accepted")
	}
}

func TestGuardReducesBlastRadius(t *testing.T) {
	// §5.1: review + canary testing explain the low misconfiguration rate.
	const fleetSize = 10000
	rng := simrand.New(99)
	guarded, err := BlastStudy(NewGuard(10), 2000, fleetSize, rng)
	if err != nil {
		t.Fatal(err)
	}
	unguarded, err := BlastStudy(Unguarded(), 2000, fleetSize, rng)
	if err != nil {
		t.Fatal(err)
	}
	if unguarded != fleetSize {
		t.Errorf("unguarded blast = %v, want full fleet", unguarded)
	}
	// Expected guarded blast: 0.5 (review miss) × [0.9×10 + 0.1×10000]
	// ≈ 505 devices — a ~20× reduction.
	if guarded > unguarded/10 {
		t.Errorf("guarded blast %v not ≪ unguarded %v", guarded, unguarded)
	}
	if guarded < 100 || guarded > 1200 {
		t.Errorf("guarded blast = %v, want ~505", guarded)
	}
}

func TestGuardStagesAttribution(t *testing.T) {
	rng := simrand.New(3)
	g := NewGuard(10)
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		dep, err := g.Deploy(Change{Faulty: true}, 1000, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[dep.CaughtAt]++
		switch dep.CaughtAt {
		case "review":
			if dep.AffectedDevices != 0 {
				t.Fatal("review catch affected devices")
			}
		case "canary":
			if dep.AffectedDevices != 10 {
				t.Fatalf("canary catch affected %d", dep.AffectedDevices)
			}
		case "":
			if dep.AffectedDevices != 1000 {
				t.Fatalf("fleet blast affected %d", dep.AffectedDevices)
			}
		}
	}
	// ~50% review, ~45% canary, ~5% fleet.
	if f := float64(counts["review"]) / 5000; f < 0.45 || f > 0.55 {
		t.Errorf("review share = %.3f", f)
	}
	if f := float64(counts[""]) / 5000; f < 0.03 || f > 0.08 {
		t.Errorf("fleet-blast share = %.3f", f)
	}
}

func TestBlastStudyValidation(t *testing.T) {
	if _, err := BlastStudy(NewGuard(5), 0, 100, simrand.New(1)); err == nil {
		t.Error("zero trials accepted")
	}
}
