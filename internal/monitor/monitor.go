// Package monitor implements the device-liveness monitoring that feeds the
// automated repair system: §4.1.3's "dedicated service to monitor device
// liveness" whose missed pings raise DevicePingFailure remediations, and
// §3.1's "skipped heartbeat ... raises alarms for management software to
// handle".
//
// Devices (or their agents) send periodic heartbeats — over UDP in
// production-like deployments, or directly via the Heartbeat method in
// simulations. A device that misses a configured number of consecutive
// heartbeat intervals is declared down exactly once per outage; it rejoins
// the healthy set on its next heartbeat.
package monitor

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"dcnr/internal/obs"
)

// FaultFunc is called once each time a registered device is declared down.
type FaultFunc func(device string)

// Monitor tracks heartbeats. Construct with New.
type Monitor struct {
	interval time.Duration
	misses   int
	onFault  FaultFunc

	mu       sync.Mutex
	lastSeen map[string]time.Time
	down     map[string]bool

	// Telemetry, attached by Instrument; nil fields are no-ops.
	mHeartbeats *obs.Counter
	mDown       *obs.Counter
	mMalformed  *obs.Counter
	gTracked    *obs.Gauge
}

// Instrument attaches telemetry to the monitor. Metrics registered on reg:
// monitor_heartbeats_total and monitor_down_transitions_total (counters),
// monitor_malformed_packets_total (counter, fed by ServePacket), and
// monitor_tracked_devices (gauge). reg may be nil.
func (m *Monitor) Instrument(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if reg == nil {
		return
	}
	m.mHeartbeats = reg.Counter("monitor_heartbeats_total")
	m.mDown = reg.Counter("monitor_down_transitions_total")
	m.mMalformed = reg.Counter("monitor_malformed_packets_total")
	m.gTracked = reg.Gauge("monitor_tracked_devices")
}

// New returns a Monitor that declares a device down after `misses`
// consecutive intervals without a heartbeat and reports it to onFault.
func New(interval time.Duration, misses int, onFault FaultFunc) (*Monitor, error) {
	if interval <= 0 {
		return nil, errors.New("monitor: interval must be positive")
	}
	if misses < 1 {
		return nil, errors.New("monitor: misses must be at least 1")
	}
	if onFault == nil {
		return nil, errors.New("monitor: nil fault callback")
	}
	return &Monitor{
		interval: interval,
		misses:   misses,
		onFault:  onFault,
		lastSeen: make(map[string]time.Time),
		down:     make(map[string]bool),
	}, nil
}

// Register starts tracking a device as of now.
func (m *Monitor) Register(device string, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.lastSeen[device]; !ok {
		m.lastSeen[device] = now
		m.gTracked.Set(float64(len(m.lastSeen)))
	}
}

// Heartbeat records a liveness signal. Unknown devices are registered
// implicitly. A device that was down recovers.
func (m *Monitor) Heartbeat(device string, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastSeen[device] = now
	delete(m.down, device)
	m.mHeartbeats.Inc()
	m.gTracked.Set(float64(len(m.lastSeen)))
}

// Check scans for devices whose last heartbeat is older than
// misses×interval, fires onFault for each newly-down device, and returns
// their names sorted. Devices already declared down are not re-reported.
func (m *Monitor) Check(now time.Time) []string {
	deadline := time.Duration(m.misses) * m.interval
	var newlyDown []string
	m.mu.Lock()
	for device, seen := range m.lastSeen {
		if m.down[device] {
			continue
		}
		if now.Sub(seen) >= deadline {
			m.down[device] = true
			newlyDown = append(newlyDown, device)
		}
	}
	m.mDown.Add(int64(len(newlyDown)))
	m.mu.Unlock()
	sort.Strings(newlyDown)
	for _, d := range newlyDown {
		m.onFault(d)
	}
	return newlyDown
}

// Down reports whether the device is currently declared down.
func (m *Monitor) Down(device string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down[device]
}

// Tracked returns the number of registered devices.
func (m *Monitor) Tracked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.lastSeen)
}

// heartbeatPrefix frames UDP heartbeat packets.
const heartbeatPrefix = "HEARTBEAT "

// ServePacket consumes heartbeat datagrams ("HEARTBEAT <device>") from
// conn until the connection is closed, stamping each with the wall clock.
// Malformed packets are counted (and reported on the
// monitor_malformed_packets_total counter when instrumented) and dropped.
//
// Shutdown contract: closing conn is the only stop signal. ReadFrom then
// fails with net.ErrClosed, the loop exits, and ServePacket returns the
// malformed count with a nil error — so the goroutine running it
// terminates promptly and never touches the monitor again (regression
// test: TestServePacketStopsCleanlyOnClose). Any other read error is
// returned as-is.
func (m *Monitor) ServePacket(conn net.PacketConn) (malformed int, err error) {
	m.mu.Lock()
	mMalformed := m.mMalformed
	m.mu.Unlock()
	buf := make([]byte, 512)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return malformed, nil
			}
			return malformed, err
		}
		msg := strings.TrimSpace(string(buf[:n]))
		device, ok := strings.CutPrefix(msg, heartbeatPrefix)
		if !ok || device == "" {
			malformed++
			mMalformed.Inc()
			continue
		}
		m.Heartbeat(device, time.Now())
	}
}

// SendHeartbeat emits one heartbeat datagram for device to addr.
func SendHeartbeat(conn net.Conn, device string) error {
	if device == "" {
		return errors.New("monitor: empty device name")
	}
	_, err := fmt.Fprintf(conn, "%s%s", heartbeatPrefix, device)
	return err
}
