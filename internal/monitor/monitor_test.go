package monitor

import (
	"net"
	"sync"
	"testing"
	"time"

	"dcnr/internal/obs"
)

func newMon(t *testing.T, faults *[]string) *Monitor {
	t.Helper()
	var mu sync.Mutex
	m, err := New(time.Second, 3, func(d string) {
		mu.Lock()
		*faults = append(*faults, d)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	cb := func(string) {}
	if _, err := New(0, 3, cb); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := New(time.Second, 0, cb); err == nil {
		t.Error("zero misses accepted")
	}
	if _, err := New(time.Second, 3, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestMissedHeartbeatsDeclareFault(t *testing.T) {
	var faults []string
	m := newMon(t, &faults)
	t0 := time.Unix(1000, 0)
	m.Register("rsw001", t0)
	m.Register("rsw002", t0)
	m.Heartbeat("rsw002", t0.Add(2*time.Second))

	// At t0+3s: rsw001 has missed 3 intervals, rsw002 has not.
	down := m.Check(t0.Add(3 * time.Second))
	if len(down) != 1 || down[0] != "rsw001" {
		t.Fatalf("down = %v", down)
	}
	if len(faults) != 1 || faults[0] != "rsw001" {
		t.Fatalf("faults = %v", faults)
	}
	if !m.Down("rsw001") || m.Down("rsw002") {
		t.Error("Down states wrong")
	}
}

func TestFaultReportedOncePerOutage(t *testing.T) {
	var faults []string
	m := newMon(t, &faults)
	t0 := time.Unix(0, 0)
	m.Register("fsw001", t0)
	m.Check(t0.Add(5 * time.Second))
	m.Check(t0.Add(10 * time.Second))
	if len(faults) != 1 {
		t.Fatalf("fault reported %d times", len(faults))
	}
	// Recovery then another outage: a second report.
	m.Heartbeat("fsw001", t0.Add(11*time.Second))
	if m.Down("fsw001") {
		t.Error("device still down after heartbeat")
	}
	m.Check(t0.Add(20 * time.Second))
	if len(faults) != 2 {
		t.Fatalf("faults after second outage = %d, want 2", len(faults))
	}
}

func TestImplicitRegistrationViaHeartbeat(t *testing.T) {
	var faults []string
	m := newMon(t, &faults)
	m.Heartbeat("core001", time.Unix(0, 0))
	if m.Tracked() != 1 {
		t.Errorf("Tracked = %d", m.Tracked())
	}
}

func TestRegisterDoesNotResetExisting(t *testing.T) {
	var faults []string
	m := newMon(t, &faults)
	t0 := time.Unix(0, 0)
	m.Register("rsw001", t0)
	// A later Register must not refresh the heartbeat clock.
	m.Register("rsw001", t0.Add(10*time.Second))
	down := m.Check(t0.Add(3 * time.Second))
	if len(down) != 1 {
		t.Errorf("re-Register refreshed liveness: down = %v", down)
	}
}

func TestCheckReturnsSorted(t *testing.T) {
	var faults []string
	m := newMon(t, &faults)
	t0 := time.Unix(0, 0)
	for _, d := range []string{"rsw009", "rsw001", "rsw005"} {
		m.Register(d, t0)
	}
	down := m.Check(t0.Add(time.Minute))
	want := []string{"rsw001", "rsw005", "rsw009"}
	for i := range want {
		if down[i] != want[i] {
			t.Fatalf("down = %v", down)
		}
	}
}

func TestUDPHeartbeatPath(t *testing.T) {
	var mu sync.Mutex
	var faults []string
	m, err := New(50*time.Millisecond, 2, func(d string) {
		mu.Lock()
		faults = append(faults, d)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		malformed, err := m.ServePacket(pc)
		if err != nil {
			t.Errorf("ServePacket returned error on close: %v", err)
		}
		done <- malformed
	}()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := SendHeartbeat(conn, "ssw042"); err != nil {
		t.Fatal(err)
	}
	// Malformed packets are dropped, not fatal.
	if _, err := conn.Write([]byte("PING nonsense")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("HEARTBEAT ")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for m.Tracked() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Tracked() != 1 {
		t.Fatalf("Tracked = %d after UDP heartbeat", m.Tracked())
	}
	// Let the device miss its heartbeats, then check.
	time.Sleep(120 * time.Millisecond)
	down := m.Check(time.Now())
	if len(down) != 1 || down[0] != "ssw042" {
		t.Fatalf("down = %v", down)
	}
	pc.Close()
	if malformed := <-done; malformed != 2 {
		t.Errorf("malformed = %d, want 2", malformed)
	}
}

func TestServePacketStopsCleanlyOnClose(t *testing.T) {
	// Regression: closing the listener must terminate the serve loop
	// promptly with a nil error (net.ErrClosed is the expected shutdown
	// path, not a failure) and leak no goroutine blocked in ReadFrom.
	var faults []string
	m := newMon(t, &faults)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		malformed int
		err       error
	}
	done := make(chan result, 1)
	go func() {
		malformed, err := m.ServePacket(pc)
		done <- result{malformed, err}
	}()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("garbage")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.Tracked() == 0 && time.Now().Before(deadline) {
		if err := SendHeartbeat(conn, "rsw001"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	pc.Close()
	select {
	case r := <-done:
		if r.err != nil {
			t.Errorf("close surfaced as error: %v", r.err)
		}
		if r.malformed < 1 {
			t.Errorf("malformed = %d, want ≥ 1", r.malformed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ServePacket goroutine did not exit after close")
	}
	// The monitor stays fully usable after the listener is gone.
	m.Heartbeat("rsw002", time.Now())
	if m.Tracked() != 2 {
		t.Errorf("Tracked = %d after post-close heartbeat", m.Tracked())
	}
}

func TestInstrumentedMonitorMetrics(t *testing.T) {
	var faults []string
	m := newMon(t, &faults)
	reg := obs.NewRegistry()
	m.Instrument(reg)
	t0 := time.Unix(0, 0)
	m.Heartbeat("rsw001", t0)
	m.Heartbeat("rsw002", t0)
	m.Heartbeat("rsw001", t0.Add(time.Second))
	m.Check(t0.Add(time.Minute)) // both miss → down
	snap := reg.Snapshot()
	if got := snap.Counters["monitor_heartbeats_total"]; got != 3 {
		t.Errorf("heartbeats = %d, want 3", got)
	}
	if got := snap.Counters["monitor_down_transitions_total"]; got != 2 {
		t.Errorf("down transitions = %d, want 2", got)
	}
	if got := snap.Gauges["monitor_tracked_devices"]; got != 2 {
		t.Errorf("tracked = %v, want 2", got)
	}
}

func TestSendHeartbeatValidation(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if err := SendHeartbeat(c1, ""); err == nil {
		t.Error("empty device accepted")
	}
}
