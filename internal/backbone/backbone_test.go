package backbone

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestContinentString(t *testing.T) {
	for _, c := range Continents {
		if strings.Contains(c.String(), "Continent(") {
			t.Errorf("continent %d unnamed", c)
		}
	}
	if !strings.Contains(Continent(99).String(), "99") {
		t.Error("out-of-range continent String")
	}
}

func TestContinentSharesSumToOne(t *testing.T) {
	sum := 0.0
	for _, c := range Continents {
		sum += ContinentShare(c)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum = %v", sum)
	}
	if ContinentShare(NorthAmerica) != 0.37 {
		t.Error("Table 4 NA share wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Edges: 3},    // fewer than continents
		{MinLinks: 2}, // below the ≥3 links invariant
		{MinLinks: 5, MaxLinks: 4},
		{Months: -1},
		{Vendors: -1},
	}
	for i, cfg := range cases {
		if _, err := Build(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	topo, err := Build(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Edges) != 120 || len(topo.Vendors) != 24 {
		t.Errorf("defaults not applied: %d edges, %d vendors", len(topo.Edges), len(topo.Vendors))
	}
}

func TestBuildShape(t *testing.T) {
	cfg := DefaultConfig()
	topo, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every edge has 3–6 links, all pointing back at it.
	for ei, e := range topo.Edges {
		if len(e.Links) < 3 || len(e.Links) > 6 {
			t.Errorf("edge %s has %d links", e.Name, len(e.Links))
		}
		for _, li := range e.Links {
			if topo.Links[li].Edge != ei {
				t.Errorf("link %s does not point at its edge", topo.Links[li].Name)
			}
		}
	}
	// Continent distribution approximates Table 4.
	counts := map[Continent]int{}
	for _, e := range topo.Edges {
		counts[e.Continent]++
	}
	for _, c := range Continents {
		want := ContinentShare(c) * float64(len(topo.Edges))
		if math.Abs(float64(counts[c])-want) > 1.5 {
			t.Errorf("%v edges = %d, want ~%.1f", c, counts[c], want)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	t1, err := Build(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Build(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Links) != len(t2.Links) {
		t.Fatal("link counts differ")
	}
	for i := range t1.Links {
		if t1.Links[i] != t2.Links[i] {
			t.Fatalf("link %d differs", i)
		}
	}
	for i := range t1.Vendors {
		if t1.Vendors[i] != t2.Vendors[i] {
			t.Fatalf("vendor %d differs", i)
		}
	}
}

func TestVendorSpreadSpansOrders(t *testing.T) {
	// §6.2: vendor link MTBF varies by orders of magnitude.
	topo, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range topo.Vendors {
		if v.LinkMTBF < min {
			min = v.LinkMTBF
		}
		if v.LinkMTBF > max {
			max = v.LinkMTBF
		}
		if v.LinkMTTR < 1.1345 || v.LinkMTTR > 1.1345*math.Exp(4.7709)+1 {
			t.Errorf("vendor MTTR %v outside the fitted model's range", v.LinkMTTR)
		}
	}
	if max/min < 20 {
		t.Errorf("vendor MTBF spread = %.1fx, want orders of magnitude", max/min)
	}
}

func TestAfricaEdgesAreMostReliable(t *testing.T) {
	topo, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	avg := map[Continent]float64{}
	n := map[Continent]int{}
	for _, e := range topo.Edges {
		avg[e.Continent] += e.cutMTBF
		n[e.Continent]++
	}
	for c := range avg {
		avg[c] /= float64(n[c])
	}
	if avg[Africa] <= avg[NorthAmerica] || avg[Africa] <= avg[SouthAmerica] {
		t.Errorf("Africa MTBF %v not the longest (NA %v, SA %v)", avg[Africa], avg[NorthAmerica], avg[SouthAmerica])
	}
}

func TestSimulateProducesOrderedClippedIntervals(t *testing.T) {
	cfg := DefaultConfig()
	topo, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	downs, err := topo.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) < 1000 {
		t.Fatalf("only %d downtime intervals over 18 months", len(downs))
	}
	window := cfg.WindowHours()
	for i, d := range downs {
		if d.Start < 0 || d.Start >= window {
			t.Fatalf("interval %d starts at %v", i, d.Start)
		}
		if d.End > window || d.End < d.Start {
			t.Fatalf("interval %d = [%v, %v]", i, d.Start, d.End)
		}
		if i > 0 && downs[i].Start < downs[i-1].Start {
			t.Fatalf("intervals not sorted at %d", i)
		}
		if d.Duration() < 0 {
			t.Fatalf("negative duration at %d", i)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{Edges: 30, Seed: 9}
	topo, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := topo.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := topo.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("lengths differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("interval %d differs", i)
		}
	}
}

func TestCutEventsTakeDownWholeEdge(t *testing.T) {
	cfg := Config{Edges: 30, Seed: 3}
	topo, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	downs, err := topo.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Group cut intervals by (edge, start): each must cover every link of
	// the edge.
	type key struct {
		edge  string
		start float64
	}
	byCut := map[key]int{}
	for _, d := range downs {
		if d.Cut {
			byCut[key{d.Edge, d.Start}]++
		}
	}
	if len(byCut) == 0 {
		t.Fatal("no cut events in 18 months")
	}
	linkCount := map[string]int{}
	for _, e := range topo.Edges {
		linkCount[e.Name] = len(e.Links)
	}
	for k, n := range byCut {
		if n != linkCount[k.edge] {
			t.Errorf("cut at %s/%v covered %d of %d links", k.edge, k.start, n, linkCount[k.edge])
		}
	}
}

func TestApportionProperty(t *testing.T) {
	f := func(n uint16) bool {
		edges := int(n%500) + len(Continents)
		counts := apportion(edges)
		total := 0
		for _, c := range Continents {
			if counts[c] < 1 {
				return false
			}
			total += counts[c]
		}
		// Allow the ≥1-per-continent floor to add at most a few edges.
		return total >= edges && total <= edges+len(Continents)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDownDuration(t *testing.T) {
	d := LinkDown{Start: 10, End: 25}
	if d.Duration() != 15 {
		t.Errorf("Duration = %v", d.Duration())
	}
}

func BenchmarkSimulate18Months(b *testing.B) {
	cfg := DefaultConfig()
	topo, err := Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topo.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
