// Package backbone models the inter-data-center network of §3.2 and §6:
// edge nodes spread across continents, connected to the WAN backbone by at
// least three fiber links, each link operated by a fiber vendor of varying
// reliability.
//
// Two failure processes run against this topology:
//
//   - Independent link failures: a single optical circuit fails (vendor
//     maintenance, equipment fault) and the vendor repairs it. Rates and
//     repair times are vendor-specific — §6.2's observation that vendors
//     span orders of magnitude in reliability.
//   - Edge-severing events: a fiber cut or correlated maintenance takes
//     down all of an edge's links at once (the paper's "combination of
//     planned fiber maintenances or unplanned fiber cuts sever its
//     backbone and Internet connectivity"). These dominate measured edge
//     downtime because independent failures of three-plus links rarely
//     overlap.
//
// The simulation emits per-link downtime intervals — the raw material the
// vendor-ticket pipeline (internal/tickets, internal/notify) transports and
// the analysis engine (internal/core) models.
package backbone

import (
	"fmt"
	"math"
	"sort"

	"dcnr/internal/des"
	"dcnr/internal/obs"
	"dcnr/internal/obs/health"
	"dcnr/internal/observe"
	"dcnr/internal/simrand"
)

// Continent locates an edge geographically (Table 4).
type Continent int

const (
	// NorthAmerica holds the plurality of edges.
	NorthAmerica Continent = iota
	// Europe is a close second.
	Europe
	// Asia follows.
	Asia
	// SouthAmerica has the shortest time between edge failures.
	SouthAmerica
	// Africa has few edges, the longest uptimes, and the slowest repairs
	// (submarine links).
	Africa
	// Australia recovers fastest (big-city locations).
	Australia

	numContinents = int(Australia) + 1
)

// Continents lists all continents in Table 4 order.
var Continents = []Continent{NorthAmerica, Europe, Asia, SouthAmerica, Africa, Australia}

var continentNames = [numContinents]string{
	"North America", "Europe", "Asia", "South America", "Africa", "Australia",
}

// String returns the continent's display name.
func (c Continent) String() string {
	if c < 0 || int(c) >= numContinents {
		return fmt.Sprintf("Continent(%d)", int(c))
	}
	return continentNames[c]
}

// continentCalibration carries Table 4's targets: the share of edges on
// each continent and the mean time between edge failures / to recovery.
type continentCalibration struct {
	share float64 // fraction of edges
	mtbf  float64 // hours
	mttr  float64 // hours
}

var continentCal = map[Continent]continentCalibration{
	NorthAmerica: {share: 0.37, mtbf: 1848, mttr: 17},
	Europe:       {share: 0.33, mtbf: 2029, mttr: 19},
	Asia:         {share: 0.14, mtbf: 2352, mttr: 11},
	SouthAmerica: {share: 0.10, mtbf: 1579, mttr: 9},
	Africa:       {share: 0.04, mtbf: 5400, mttr: 22},
	Australia:    {share: 0.02, mtbf: 1642, mttr: 2},
}

// ContinentShare returns the fraction of edges located on c (Table 4).
func ContinentShare(c Continent) float64 { return continentCal[c].share }

// Vendor is a fiber vendor operating some of the backbone's links.
type Vendor struct {
	// Name is the vendor identifier ("vendor07").
	Name string
	// LinkMTBF is the mean time between failures of this vendor's links,
	// in hours. Vendors span orders of magnitude (§6.2).
	LinkMTBF float64
	// LinkMTTR is the vendor's mean link repair time in hours, sampled
	// from the paper's fitted model MTTR(p) = 1.1345·e^(4.7709p).
	LinkMTTR float64
}

// Edge is an edge node: a geographical location with backbone hardware.
type Edge struct {
	// Name is the edge identifier ("edge042").
	Name string
	// Continent locates the edge.
	Continent Continent
	// Links are the indices (into Topology.Links) of the edge's fiber
	// links; every edge has at least three.
	Links []int
	// cutMTBF and cutMTTR parameterize the edge-severing process.
	cutMTBF float64
	cutMTTR float64
}

// Link is one end-to-end fiber link.
type Link struct {
	// Name is the link identifier ("link0137").
	Name string
	// Edge is the index of the edge the link serves.
	Edge int
	// Vendor is the index of the operating vendor.
	Vendor int
	// CircuitID mimics the logical fiber-circuit identifiers that appear
	// in vendor notification emails.
	CircuitID string
}

// Topology is the generated backbone.
type Topology struct {
	Edges   []Edge
	Links   []Link
	Vendors []Vendor
}

// Config sizes the backbone and its simulation.
type Config struct {
	// Observe bundles the observability wiring (Metrics, Trace, Health,
	// Logger) shared by every simulation entry point. Prefer it over the
	// deprecated flat fields below.
	observe.Observe
	// Edges is the number of edge nodes. Default 120.
	Edges int
	// MinLinks and MaxLinks bound the links per edge (at least three per
	// §6). Defaults 3 and 6.
	MinLinks, MaxLinks int
	// Vendors is the number of fiber vendors. Default 24.
	Vendors int
	// Months is the observation window in months of 730 hours. Default 18
	// (October 2016 – April 2018).
	Months int
	// Seed roots all randomness.
	Seed uint64
	// Metrics, when non-nil, receives the DES kernel's counters and
	// gauges for the backbone simulation.
	//
	// Deprecated: set Observe.Metrics instead. The flat field remains a
	// working passthrough for one release; an explicitly set
	// Observe.Metrics wins.
	Metrics *obs.Registry
	// Trace, when non-nil, records per-event spans from the backbone's
	// event loop.
	//
	// Deprecated: set Observe.Trace instead (same passthrough rule as
	// Metrics).
	Trace *obs.Tracer
	// Health, when non-nil, receives every reconstructed link downtime
	// interval and is evaluated over the window, driving the
	// edge-availability SLO signal. Wired by dcnr.SimulateBackbone.
	//
	// Deprecated: set Observe.Health instead (same passthrough rule as
	// Metrics).
	Health *health.Engine
}

// DefaultConfig returns the study-sized configuration.
func DefaultConfig() Config {
	return Config{Edges: 120, MinLinks: 3, MaxLinks: 6, Vendors: 24, Months: 18, Seed: 1}
}

// WindowHours returns the simulated observation window in hours.
func (c Config) WindowHours() float64 { return float64(c.Months) * 730 }

// Observed resolves the effective observability wiring: fields set on the
// embedded Observe struct win, the deprecated flat fields back them up.
func (c Config) Observed() observe.Observe {
	return c.Observe.Or(observe.Observe{Metrics: c.Metrics, Trace: c.Trace, Health: c.Health})
}

// Validate normalizes the configuration in place — zero-valued sizing
// fields take the DefaultConfig values, and the deprecated flat
// observability fields fold into the embedded Observe struct — then checks
// the result: at least one edge per continent, at least three links per
// edge, MaxLinks ≥ MinLinks, and positive Months and Vendors. It is the
// single normalization step the simulation entry points run; calling it
// again is a no-op.
func (c *Config) Validate() error {
	c.Observe = c.Observed()
	c.Metrics, c.Trace, c.Health = nil, nil, nil
	return c.applyDefaults()
}

func (c *Config) applyDefaults() error {
	d := DefaultConfig()
	if c.Edges == 0 {
		c.Edges = d.Edges
	}
	if c.MinLinks == 0 {
		c.MinLinks = d.MinLinks
	}
	if c.MaxLinks == 0 {
		c.MaxLinks = d.MaxLinks
	}
	if c.Vendors == 0 {
		c.Vendors = d.Vendors
	}
	if c.Months == 0 {
		c.Months = d.Months
	}
	switch {
	case c.Edges < len(Continents):
		return fmt.Errorf("backbone: need at least %d edges, got %d", len(Continents), c.Edges)
	case c.MinLinks < 3:
		return fmt.Errorf("backbone: edges need at least 3 links (got MinLinks=%d)", c.MinLinks)
	case c.MaxLinks < c.MinLinks:
		return fmt.Errorf("backbone: MaxLinks %d < MinLinks %d", c.MaxLinks, c.MinLinks)
	case c.Months < 1:
		return fmt.Errorf("backbone: Months must be positive")
	case c.Vendors < 1:
		return fmt.Errorf("backbone: Vendors must be positive")
	}
	return nil
}

// Build generates a backbone topology from cfg. Edge counts per continent
// follow Table 4's distribution; per-edge and per-vendor reliability
// parameters are drawn from the calibrated distributions.
func Build(cfg Config) (*Topology, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	src := simrand.NewSource(cfg.Seed)
	t := &Topology{}

	vrng := src.Stream("vendors")
	for i := 0; i < cfg.Vendors; i++ {
		// Link MTBF: log-normal with median 2326 h (§6.2's 50th
		// percentile), heavy spread, clamped to the observed extremes.
		mtbf := 2326 * math.Exp(1.4*vrng.Normal())
		mtbf = clamp(mtbf, 20, 15000)
		// Link MTTR: inverse-CDF sample of the paper's vendor model.
		mttr := 1.1345 * math.Exp(4.7709*vrng.Float64())
		t.Vendors = append(t.Vendors, Vendor{
			Name:     fmt.Sprintf("vendor%02d", i+1),
			LinkMTBF: mtbf,
			LinkMTTR: mttr,
		})
	}

	// Continent assignment: largest-remainder apportionment of Table 4's
	// shares over cfg.Edges.
	counts := apportion(cfg.Edges)

	erng := src.Stream("edges")
	lrng := src.Stream("links")
	for _, cont := range Continents {
		cal := continentCal[cont]
		for i := 0; i < counts[cont]; i++ {
			e := Edge{
				Name:      fmt.Sprintf("edge%03d", len(t.Edges)+1),
				Continent: cont,
				// Per-edge severing MTBF/MTTR: log-normal around the
				// continent's Table 4 target, giving the high
				// cross-edge variance §6.1 reports (σ chosen so the
				// true spread dominates the ~40% estimator noise of an
				// 18-month window, which is what makes the measured
				// percentile curves exponential like Figures 15/16).
				// The exp(-σ²/2) factor makes the draw mean-unbiased so
				// continent averages land on the calibration targets.
				cutMTBF: cal.mtbf * math.Exp(0.8*erng.Normal()-0.32),
				cutMTTR: cal.mttr * math.Exp(0.9*erng.Normal()-0.405),
			}
			nLinks := cfg.MinLinks + lrng.Intn(cfg.MaxLinks-cfg.MinLinks+1)
			for j := 0; j < nLinks; j++ {
				link := Link{
					Name:      fmt.Sprintf("link%04d", len(t.Links)+1),
					Edge:      len(t.Edges),
					Vendor:    lrng.Intn(cfg.Vendors),
					CircuitID: fmt.Sprintf("CKT-%05d-%02d", len(t.Links)+1, j+1),
				}
				e.Links = append(e.Links, len(t.Links))
				t.Links = append(t.Links, link)
			}
			t.Edges = append(t.Edges, e)
		}
	}
	return t, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// apportion distributes n edges over continents by Table 4 shares using
// largest remainders, guaranteeing every continent at least one edge.
func apportion(n int) map[Continent]int {
	counts := make(map[Continent]int, numContinents)
	type rem struct {
		c Continent
		r float64
	}
	var rems []rem
	assigned := 0
	for _, c := range Continents {
		exact := continentCal[c].share * float64(n)
		counts[c] = int(exact)
		rems = append(rems, rem{c, exact - float64(int(exact))})
		assigned += counts[c]
	}
	// Hand out the remainder by largest fractional part (stable because
	// Continents is ordered).
	for assigned < n {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].r > rems[best].r {
				best = i
			}
		}
		counts[rems[best].c]++
		rems[best].r = -1
		assigned++
	}
	for _, c := range Continents {
		if counts[c] == 0 {
			counts[c] = 1
		}
	}
	return counts
}

// LinkDown is one link downtime interval: the unit of the vendor-ticket
// stream. End is when the repair completed; intervals clipped by the end of
// the observation window keep End = window end.
type LinkDown struct {
	// Link, Edge, Vendor name the affected elements.
	Link, Edge, Vendor string
	// Continent is the edge's continent.
	Continent Continent
	// Start and End bound the downtime in hours since the window start.
	Start, End float64
	// Cut marks intervals caused by an edge-severing event rather than an
	// isolated link failure.
	Cut bool
}

// Duration returns the interval length in hours.
func (d LinkDown) Duration() float64 { return d.End - d.Start }

// Simulate runs the failure processes over the observation window and
// returns every link downtime interval, ordered by start time.
func (t *Topology) Simulate(cfg Config) ([]LinkDown, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	window := cfg.WindowHours()
	src := simrand.NewSource(cfg.Seed ^ 0x9e3779b97f4a7c15)
	sim := &des.Simulator{}
	o := cfg.Observed()
	sim.Instrument(o.Metrics, o.Trace)
	var out []LinkDown

	record := func(link int, start, end float64, cut bool) {
		if start >= window {
			return
		}
		if end > window {
			end = window
		}
		l := t.Links[link]
		out = append(out, LinkDown{
			Link:      l.Name,
			Edge:      t.Edges[l.Edge].Name,
			Vendor:    t.Vendors[l.Vendor].Name,
			Continent: t.Edges[l.Edge].Continent,
			Start:     start,
			End:       end,
			Cut:       cut,
		})
	}

	// Independent per-link failures.
	for i := range t.Links {
		i := i
		v := t.Vendors[t.Links[i].Vendor]
		rng := src.Stream("link/" + t.Links[i].Name)
		var fail func(now float64)
		fail = func(now float64) {
			at := now + rng.Exp(v.LinkMTBF)
			if at >= window {
				return
			}
			repair := rng.Exp(v.LinkMTTR)
			record(i, at, at+repair, false)
			sim.After(at+repair-sim.Now(), fail)
		}
		sim.After(0, func(now float64) { fail(now) })
	}

	// Edge-severing events.
	for e := range t.Edges {
		e := e
		edge := t.Edges[e]
		rng := src.Stream("edge/" + edge.Name)
		var cut func(now float64)
		cut = func(now float64) {
			// A day of separation between severing events on one edge:
			// monitoring hysteresis and ticket consolidation mean two
			// cuts minutes apart are one field event, and the paper's
			// least reliable edge still averaged 253 h between failures.
			gap := rng.Exp(edge.cutMTBF)
			if gap < 24 {
				gap = 24
			}
			at := now + gap
			if at >= window {
				return
			}
			repair := rng.Exp(edge.cutMTTR)
			for _, li := range edge.Links {
				record(li, at, at+repair, true)
			}
			sim.After(at+repair-sim.Now(), cut)
		}
		sim.After(0, func(now float64) { cut(now) })
	}

	sim.Run(window)
	sortLinkDowns(out)
	return out, nil
}

func sortLinkDowns(ds []LinkDown) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Start != ds[j].Start {
			return ds[i].Start < ds[j].Start
		}
		return ds[i].Link < ds[j].Link
	})
}
