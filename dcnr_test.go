package dcnr

import (
	"testing"
)

func TestSimulateIntraDCDefaults(t *testing.T) {
	res, err := SimulateIntraDC(IntraConfig{Seed: 1, FromYear: 2016, ToYear: 2017})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() == 0 {
		t.Fatal("no SEVs generated")
	}
	if res.Incidents != res.Store.Len() {
		t.Errorf("Incidents = %d, store = %d", res.Incidents, res.Store.Len())
	}
	if res.Faults <= res.Incidents {
		t.Error("faults should outnumber incidents")
	}
	if res.Analysis == nil || res.Fleet == nil {
		t.Fatal("missing analysis handles")
	}
	if res.RemediationStats[RSW].Issues == 0 {
		t.Error("no RSW remediation activity recorded")
	}
}

func TestSimulateIntraDCFullPeriodDefaults(t *testing.T) {
	// Zero years default to the full study period.
	res, err := SimulateIntraDC(IntraConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	years := res.Analysis.Years()
	if years[0] != FirstYear || years[len(years)-1] != LastYear {
		t.Errorf("years = %v", years)
	}
}

func TestSimulateIntraDCInvalidRange(t *testing.T) {
	if _, err := SimulateIntraDC(IntraConfig{FromYear: 2005, ToYear: 2006}); err == nil {
		t.Error("invalid range accepted")
	}
}

func TestSimulateIntraDCDeterministic(t *testing.T) {
	a, err := SimulateIntraDC(IntraConfig{Seed: 7, FromYear: 2017, ToYear: 2017})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateIntraDC(IntraConfig{Seed: 7, FromYear: 2017, ToYear: 2017})
	if err != nil {
		t.Fatal(err)
	}
	if a.Store.Len() != b.Store.Len() || a.Faults != b.Faults {
		t.Error("identical configs produced different histories")
	}
}

func TestSimulateIntraDCAblation(t *testing.T) {
	on, err := SimulateIntraDC(IntraConfig{Seed: 3, FromYear: 2017, ToYear: 2017})
	if err != nil {
		t.Fatal(err)
	}
	off, err := SimulateIntraDC(IntraConfig{Seed: 3, FromYear: 2017, ToYear: 2017, DisableRemediation: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Incidents < 20*on.Incidents {
		t.Errorf("ablation incidents = %d vs %d; want a large increase", off.Incidents, on.Incidents)
	}
}

func TestSimulateBackbone(t *testing.T) {
	cfg := DefaultBackboneConfig()
	cfg.Edges = 40
	cfg.Seed = 11
	res, err := SimulateBackbone(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notices) == 0 || len(res.Downtimes) == 0 {
		t.Fatal("empty backbone dataset")
	}
	if len(res.Notices) != 2*len(res.Downtimes) {
		t.Errorf("notices = %d, downtimes = %d", len(res.Notices), len(res.Downtimes))
	}
	if len(res.Analysis.EdgeMTBF()) == 0 {
		t.Error("no edge MTBF measurements")
	}
	if _, err := res.Analysis.PlanRisk(99.99); err != nil {
		t.Errorf("PlanRisk: %v", err)
	}
}

func TestSimulateBackboneInvalidConfig(t *testing.T) {
	if _, err := SimulateBackbone(BackboneConfig{Edges: 2}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFacadeHelpers(t *testing.T) {
	dt, err := ParseDeviceName("rsw001.pod001.dc1.ra")
	if err != nil || dt != RSW {
		t.Errorf("ParseDeviceName = %v, %v", dt, err)
	}
	if !RemediationSupported(RSW) || RemediationSupported(CSA) {
		t.Error("RemediationSupported wrong")
	}
	if NewSEVStore().Len() != 0 {
		t.Error("NewSEVStore not empty")
	}
	if NewFleet(1).Population(2017, RSW) == 0 {
		t.Error("NewFleet broken")
	}
	if NewTicketCollector().Open() != 0 {
		t.Error("NewTicketCollector not empty")
	}
	fit, err := FitExponential([]Point{{X: 0.1, Y: 1}, {X: 0.5, Y: 2}, {X: 1, Y: 4}})
	if err != nil || fit.A <= 0 {
		t.Errorf("FitExponential = %+v, %v", fit, err)
	}
	if len(Curve(map[string]float64{"a": 1})) != 1 {
		t.Error("Curve broken")
	}
	if _, err := ParseNotice("garbage"); err == nil {
		t.Error("ParseNotice accepted garbage")
	}
}
