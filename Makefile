GO ?= go

.PHONY: build test vet race verify bench bench-sevquery bench-obs test-obs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector — the new SEV store
# indexes must stay consistent under concurrent Add + Query.
race:
	$(GO) test -race ./...

# test-obs race-tests the telemetry package and every instrumented hot
# path: lock-free metric updates and concurrent trace emission must stay
# clean under the race detector.
test-obs:
	$(GO) test -race ./internal/obs/ ./internal/des/ ./internal/remediation/ ./internal/monitor/ ./internal/sev/ ./internal/core/

# verify is the tier-1 gate: vet plus the race-enabled test suite (which
# includes the obs package and all instrumented packages).
verify: vet race test-obs

bench:
	$(GO) test -run '^$$' -bench . -benchtime 200ms .

# bench-sevquery snapshots the per-figure and query-engine benchmarks into
# BENCH_sevquery.json so speedups/regressions are diffable across PRs.
bench-sevquery:
	./scripts/bench_sevquery.sh

# bench-obs measures the telemetry subsystem: obs micro-benchmarks plus
# instrumented-vs-uninstrumented end-to-end dcsim and repro runs, recorded
# in BENCH_obs.json. The end-to-end overhead must stay under 5%.
bench-obs:
	./scripts/bench_obs.sh
