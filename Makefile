GO ?= go

.PHONY: build test vet lint lint-hot race verify ci bench bench-des bench-sevquery bench-obs bench-health bench-sweep bench-serve test-obs test-health api apicheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the project-invariant analyzers (cmd/dcnrlint): the
# per-package checks (simdeterminism, heaplock, obsnilsafe, errchecklite)
# plus the inter-procedural module checks (simtaint, lockflow), with
# per-analyzer wall timings on stderr, and fails on any unformatted file.
lint:
	$(GO) run ./cmd/dcnrlint -time ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

# lint-hot additionally runs the compiler-backed hotalloc gate: every
# //hot:noalloc region (DES scheduler, SpanRing, journal lanes) must be
# free of compiler-reported heap escapes. Split from lint because it
# shells out to `go build -gcflags=-m` per annotated package.
lint-hot:
	$(GO) run ./cmd/dcnrlint -time -hot ./...

# api regenerates the exported-API golden file after an intentional
# surface change; apicheck fails when the facade's exported API drifts
# from the reviewed api.txt.
api:
	$(GO) run ./cmd/apidump > api.txt

apicheck:
	@$(GO) run ./cmd/apidump | diff -u api.txt - \
		|| { echo "exported API drifted from api.txt; review and run 'make api'"; exit 1; }

# race runs the full suite under the race detector — the new SEV store
# indexes must stay consistent under concurrent Add + Query.
race:
	$(GO) test -race ./...

# test-obs race-tests the telemetry package and every instrumented hot
# path: lock-free metric updates and concurrent trace emission must stay
# clean under the race detector.
test-obs:
	$(GO) test -race ./internal/obs/ ./internal/obs/health/ ./internal/obs/journal/ ./internal/obs/timeline/ ./internal/des/ ./internal/remediation/ ./internal/monitor/ ./internal/sev/ ./internal/core/

# test-health race-tests the streaming SLO engine and its end-to-end
# wiring: the engine package itself plus the facade scenarios (elevated
# burn drill, calibrated quiet run, backbone edge signal, report format).
test-health:
	$(GO) test -race ./internal/obs/health/ ./internal/notify/
	$(GO) test -race -run 'TestHealth|TestSLO|TestBackboneHealth' .

# verify is the tier-1 gate: vet, the static-analysis suite (including
# the hotalloc escape gate), and the race-enabled test suite (which
# includes the obs package and all instrumented packages).
verify: vet lint lint-hot apicheck race test-obs

# ci is the ordered gate for continuous integration:
# build -> vet -> lint -> apicheck -> race -> test-obs, fail-fast.
ci:
	./scripts/ci.sh

bench:
	$(GO) test -run '^$$' -bench . -benchtime 200ms .

# bench-des measures the DES kernel hot path (schedule 10k events and
# drain, plain and instrumented) into BENCH_des.json. It fails if the
# instrumented loop falls below 5x faster than the recorded pre-pooling
# baseline or if either loop allocates in steady state.
bench-des:
	./scripts/bench_des.sh

# bench-sevquery snapshots the per-figure and query-engine benchmarks into
# BENCH_sevquery.json so speedups/regressions are diffable across PRs.
bench-sevquery:
	./scripts/bench_sevquery.sh

# bench-obs measures the telemetry subsystem: obs micro-benchmarks plus
# instrumented-vs-uninstrumented end-to-end dcsim and repro runs, recorded
# in BENCH_obs.json. Hard gates: metrics-only end-to-end overhead < 5%,
# full tracing < 15%.
bench-obs:
	./scripts/bench_obs.sh

# bench-health measures the SLO/health engine: micro-benchmarks plus
# end-to-end dcsim runs with and without -health-out (and with structured
# logging), recorded in BENCH_health.json. The engine overhead must stay
# under 5%.
bench-health:
	./scripts/bench_health.sh

# bench-sweep measures the campaign engine: a 16-run seed sweep at scale 1
# on 8 workers vs 1 worker, recorded in BENCH_sweep.json along with the
# machine's CPU count. It also hard-verifies determinism: the parallel and
# serial reports (and a repeated parallel run) must be byte-identical.
bench-sweep:
	./scripts/bench_sweep.sh

# bench-serve measures the query daemon: dcnrload self-hosts a dcnrd
# store and replays the paper-figure query mix at a rising concurrency
# ladder, recording qps/p50/p99/cache-hit-rate per step in
# BENCH_serve.json. Gates only on machine-independent invariants
# (error-free steps, nonzero qps, cache hits on the repeated mix).
bench-serve:
	./scripts/bench_serve.sh
