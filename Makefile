GO ?= go

.PHONY: build test vet race verify bench bench-sevquery

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector — the new SEV store
# indexes must stay consistent under concurrent Add + Query.
race:
	$(GO) test -race ./...

# verify is the tier-1 gate: vet plus the race-enabled test suite.
verify: vet race

bench:
	$(GO) test -run '^$$' -bench . -benchtime 200ms .

# bench-sevquery snapshots the per-figure and query-engine benchmarks into
# BENCH_sevquery.json so speedups/regressions are diffable across PRs.
bench-sevquery:
	./scripts/bench_sevquery.sh
